package dataplane

import (
	"math"
	"testing"
)

// avgOver averages TotalVictimGbps over [from, to).
func avgOver(samples []Sample, from, to int) float64 {
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.Sec >= from && s.Sec < to {
			sum += s.TotalVictimGbps
			n++
		}
	}
	return sum / float64(n)
}

func runMulticoreScenario(t *testing.T, workers int) []Sample {
	t.Helper()
	sc, err := MulticoreScenario(workers)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != sc.DurationSec {
		t.Fatalf("got %d samples, want %d", len(samples), sc.DurationSec)
	}
	return samples
}

// TestMulticoreScenario checks the scaling story end to end: runs are
// deterministic, per-worker series account for the totals, victim
// throughput recovers with core count during the attack, and the mask
// count — shared state — is identical at every core count.
func TestMulticoreScenario(t *testing.T) {
	one := runMulticoreScenario(t, 1)
	four := runMulticoreScenario(t, 4)
	fourAgain := runMulticoreScenario(t, 4)

	// Determinism: the simulator is virtual-time and serial-driven.
	for i := range four {
		if four[i].TotalVictimGbps != fourAgain[i].TotalVictimGbps ||
			four[i].Masks != fourAgain[i].Masks ||
			four[i].AttackCost != fourAgain[i].AttackCost {
			t.Fatalf("second 4-worker run diverges at t=%d", i)
		}
	}

	// Single-core runs keep the classic sample shape.
	if one[0].WorkerAttackCost != nil || one[0].WorkerVictimGbps != nil {
		t.Error("single-core samples should not carry per-worker series")
	}
	// Multi-core samples carry coherent per-worker series.
	for _, s := range four {
		if len(s.WorkerAttackCost) != 4 || len(s.WorkerVictimGbps) != 4 {
			t.Fatalf("t=%d: per-worker series have lengths %d/%d, want 4/4",
				s.Sec, len(s.WorkerAttackCost), len(s.WorkerVictimGbps))
		}
		perWorker, attack := 0.0, 0.0
		for w := 0; w < 4; w++ {
			perWorker += s.WorkerVictimGbps[w]
			attack += s.WorkerAttackCost[w]
		}
		if math.Abs(perWorker-s.TotalVictimGbps) > 1e-9 {
			t.Fatalf("t=%d: worker victim series sum %.6f != total %.6f",
				s.Sec, perWorker, s.TotalVictimGbps)
		}
		if math.Abs(attack-s.AttackCost) > 1e-9 {
			t.Fatalf("t=%d: worker attack costs sum %.6f != total %.6f",
				s.Sec, attack, s.AttackCost)
		}
	}

	// Before the attack both configurations saturate the offered load.
	if pre1, pre4 := avgOver(one, 10, 30), avgOver(four, 10, 30); math.Abs(pre1-pre4) > 0.1 {
		t.Errorf("pre-attack throughput differs: 1 worker %.2f, 4 workers %.2f", pre1, pre4)
	}
	// Under attack, extra cores absorb the sharded slow-path load...
	under1, under4 := avgOver(one, 60, 90), avgOver(four, 60, 90)
	if under4 < 1.5*under1 {
		t.Errorf("4 workers should recover markedly over 1 under attack: %.3f vs %.3f",
			under4, under1)
	}
	// ...but the shared mask explosion caps recovery far below baseline.
	if under4 > 0.5*avgOver(four, 10, 30) {
		t.Errorf("4 workers recovered to %.2f Gbps; the shared mask scan should cap it lower", under4)
	}
	// The inflated tuple space is identical: the MFC is shared state.
	peak := func(ss []Sample) int {
		m := 0
		for _, s := range ss {
			if s.Masks > m {
				m = s.Masks
			}
		}
		return m
	}
	if p1, p4 := peak(one), peak(four); p1 != p4 {
		t.Errorf("peak masks differ across core counts: %d vs %d", p1, p4)
	}
}

// TestMulticorePortPinning: once the traffic mix names ingress vports, the
// synchronous multi-core runner pins flows to workers by port (rxq-to-PMD)
// instead of by RSS hash — the attack's CPU cost lands only on the flooded
// port's worker, so victims on the other worker dodge the CPU-exhaustion
// component entirely. The shared megaflow cache's mask-scan tax still hits
// every victim (global state; the point of the multicore experiment), so
// the pinning isolates, it does not repeal, the attack.
func TestMulticorePortPinning(t *testing.T) {
	build := func() *Scenario {
		sc, err := MulticoreScenario(2)
		if err != nil {
			t.Fatal(err)
		}
		// Re-home the mix onto explicit vports: victims 0/1 on port 0
		// (worker 0), victims 2/3 on port 1 (worker 1), flood on port 1 at
		// a rate where attack CPU, not just the scan tax, bites worker 1.
		for i, v := range sc.Victims {
			v.Port = i / 2
		}
		sc.Phases[0].Port = 1
		sc.Phases[0].RatePps = 30000
		return sc
	}
	samples, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	again, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}

	attackTicks := 0
	for i, s := range samples {
		// Determinism with port pinning on.
		if s.TotalVictimGbps != again[i].TotalVictimGbps || s.AttackCost != again[i].AttackCost {
			t.Fatalf("port-pinned rerun diverges at t=%d", s.Sec)
		}
		if s.WorkerAttackCost[0] != 0 {
			t.Fatalf("t=%d: attack cost %.3f leaked onto worker 0; flood is pinned to port 1",
				s.Sec, s.WorkerAttackCost[0])
		}
		if s.AttackPps > 0 && s.WorkerAttackCost[1] > 0 {
			attackTicks++
		}
	}
	if attackTicks == 0 {
		t.Fatal("attack cost never landed on the flooded port's worker")
	}

	// Containment ordering: the unflooded worker's victims, paying only
	// the shared scan tax, keep several times the throughput of the
	// flooded worker's victims, who additionally lose their CPU budget to
	// the flood.
	perVictimAvg := func(ss []Sample, i, from, to int) float64 {
		sum, n := 0.0, 0
		for _, s := range ss {
			if s.Sec >= from && s.Sec < to {
				sum += s.VictimGbps[i]
				n++
			}
		}
		return sum / float64(n)
	}
	for i := 0; i < 2; i++ {
		clean, flooded := perVictimAvg(samples, i, 60, 90), perVictimAvg(samples, i+2, 60, 90)
		if clean < 4*flooded {
			t.Errorf("victims %d/%d under attack: unflooded worker %.3f vs flooded %.3f; pinning should isolate the CPU cost",
				i, i+2, clean, flooded)
		}
		// Both still sit far below pre-attack: the mask-scan tax is global.
		if pre := perVictimAvg(samples, i, 10, 30); clean > 0.5*pre {
			t.Errorf("victim %d kept %.3f of %.3f; the shared mask explosion should tax it", i, clean, pre)
		}
	}
}
