package dataplane

import (
	"testing"

	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// asyncScenario builds a scaled-down saturation scenario (SipDp, ~257
// attainable masks) so the test suite stays fast; the full SipSpDp preset
// runs in the `saturation` experiment and the bench JSON suite.
func asyncScenario(t *testing.T, up *UpcallParams) *Scenario {
	t.Helper()
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	victim := &Victim{
		Name:        "Victim",
		Header:      victimHeader(0x0a000070, 45000, 80),
		OfferedGbps: 5,
	}
	return &Scenario{
		Name:        "async-test",
		Switch:      sw,
		NIC:         TCPGroOff,
		Victims:     []*Victim{victim},
		Phases:      []AttackPhase{{Trace: trace, RatePps: 300, StartSec: 2, StopSec: 18}},
		DurationSec: 34, // leaves the 10 s idle horizon room to drain post-attack
		Workers:     2,
		Upcall:      up,
	}
}

// sumUpcall folds the per-second series into totals.
func sumUpcall(samples []Sample) (tot UpcallSample, peakMasks, peakBacklog int) {
	for _, s := range samples {
		if s.Masks > peakMasks {
			peakMasks = s.Masks
		}
		u := s.Upcall
		if u == nil {
			continue
		}
		if u.Backlog > peakBacklog {
			peakBacklog = u.Backlog
		}
		tot.Enqueued += u.Enqueued
		tot.Deduped += u.Deduped
		tot.QueueDrops += u.QueueDrops
		tot.QuotaDrops += u.QuotaDrops
		tot.Handled += u.Handled
		tot.Installed += u.Installed
		tot.Expired += u.Expired
		tot.Invalidated += u.Invalidated
	}
	return tot, peakMasks, peakBacklog
}

// TestAsyncScenarioBoundsMaskGrowth: under the same attack, bounded
// queues/quotas/handler budget cap MFC mask growth well below the
// unbounded async run, with the refusals visible in the series.
func TestAsyncScenarioBoundsMaskGrowth(t *testing.T) {
	open := asyncScenario(t, &UpcallParams{RevalidateSec: 1})
	// The single ingress vport admits 12/s while the handlers serve 8, so
	// the backlog climbs toward the queue cap: early seconds show quota
	// drops (tokens out while the queue has room), late seconds queue-full
	// drops — every bound is exercised.
	bounded := asyncScenario(t, &UpcallParams{
		QueueCap: 32, QuotaPerPort: 12, HandledPerSec: 8, RevalidateSec: 1})

	so, err := open.Run()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := bounded.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range [][]Sample{so, sb} {
		for _, smp := range s {
			if smp.Upcall == nil {
				t.Fatal("async sample missing the upcall series")
			}
		}
	}
	to, po, _ := sumUpcall(so)
	tb, pb, backlog := sumUpcall(sb)

	if to.QueueDrops+to.QuotaDrops != 0 {
		t.Errorf("unbounded run dropped %d upcalls", to.QueueDrops+to.QuotaDrops)
	}
	if to.Handled != to.Enqueued {
		t.Errorf("unbounded run left %d upcalls unhandled", to.Enqueued-to.Handled)
	}
	if po < 200 {
		t.Errorf("unbounded peak masks %d; attack did not inflate the cache", po)
	}
	if tb.QuotaDrops == 0 {
		t.Error("bounded run recorded no quota drops")
	}
	if pb >= po/3 {
		t.Errorf("bounded peak masks %d vs unbounded %d: bound not effective", pb, po)
	}
	if backlog == 0 {
		t.Error("bounded run never built a backlog despite the handler budget")
	}
	if tb.Installed > tb.Handled {
		t.Errorf("installed %d > handled %d", tb.Installed, tb.Handled)
	}
	// The handler budget is a hard per-second ceiling.
	for _, s := range sb {
		if s.Upcall.Handled > 8 {
			t.Fatalf("second %d handled %d upcalls, budget is 8", s.Sec, s.Upcall.Handled)
		}
	}
	// Victims recover once the revalidator's idle expiry drains the attack
	// masks (attack stops at 18; the 10 s horizon clears by ~29).
	if g := avgVictimGbpsT(sb, 31, 34); g < avgVictimGbpsT(sb, 10, 18) {
		t.Errorf("bounded victim did not recover: under=%.2f post=%.2f",
			avgVictimGbpsT(sb, 10, 18), g)
	}
}

// TestAsyncScenarioRevalidatesInjectedACL: a mid-run SwapTable (the
// Fig. 8c injection) takes effect through the revalidator's dump-and-check
// rather than synchronously.
func TestAsyncScenarioRevalidatesInjectedACL(t *testing.T) {
	sc := asyncScenario(t, &UpcallParams{RevalidateSec: 1})
	malicious := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	sc.Phases = append(sc.Phases, AttackPhase{
		Trace: sc.Phases[0].Trace, RatePps: 0, StartSec: 10, StopSec: 11,
		InjectACL: malicious})
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	invalidated := 0
	for _, s := range samples {
		invalidated += s.Upcall.Invalidated
	}
	if invalidated == 0 {
		t.Error("revalidator never invalidated megaflows after the ACL injection")
	}
}

// avgVictimGbpsT averages TotalVictimGbps over [from, to) seconds.
func avgVictimGbpsT(samples []Sample, from, to int) float64 {
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.Sec >= from && s.Sec < to {
			sum += s.TotalVictimGbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestFlowSetupLatencySeries: the per-second flow-setup latency surfaced
// on UpcallSample tracks the standing backlog — zero while the handlers
// keep up, climbing toward queue-cap/service-rate once the bound bites,
// recorded against the simulation clock even while a post-attack backlog
// drains, and -1 on seconds with nothing handled.
func TestFlowSetupLatencySeries(t *testing.T) {
	sc := asyncScenario(t, &UpcallParams{
		QueueCap: 32, QuotaPerPort: 12, HandledPerSec: 8, RevalidateSec: 1})
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	peakP99 := -1
	for _, s := range samples {
		u := s.Upcall
		if u == nil {
			t.Fatal("async sample missing the upcall series")
		}
		if (u.FlowSetupP99 >= 0) != (u.Handled > 0) {
			t.Errorf("second %d: p99 %d with %d handled; -1 iff nothing handled",
				s.Sec, u.FlowSetupP99, u.Handled)
		}
		if u.FlowSetupP50 > u.FlowSetupP99 {
			t.Errorf("second %d: p50 %d above p99 %d", s.Sec, u.FlowSetupP50, u.FlowSetupP99)
		}
		if len(u.PortFlowSetupP99) != len(u.PortQuota) {
			t.Fatalf("second %d: per-port FCT len %d, quota len %d",
				s.Sec, len(u.PortFlowSetupP99), len(u.PortQuota))
		}
		// Every pop is attributed to a source, so whenever the aggregate
		// recorded residence this second, some port split did too (and
		// vice versa).
		maxPort := -1
		for _, p := range u.PortFlowSetupP99 {
			if p > maxPort {
				maxPort = p
			}
		}
		if (maxPort >= 0) != (u.FlowSetupP99 >= 0) {
			t.Errorf("second %d: aggregate p99 %d vs per-port %v", s.Sec, u.FlowSetupP99, u.PortFlowSetupP99)
		}
		if u.FlowSetupP99 > peakP99 {
			peakP99 = u.FlowSetupP99
		}
	}
	// The vport admits 12/s against an 8/s handler budget, so the backlog
	// climbs to the 32-entry cap and an admitted upcall waits ~32/8 = 4
	// virtual seconds at peak.
	if peakP99 < 2 {
		t.Errorf("peak flow-setup p99 %d, want >= 2 (backlog never showed in the metric)", peakP99)
	}
	// Before the attack (seconds 0-1) the victim's own setup is instant.
	for _, s := range samples[:2] {
		if u := s.Upcall; u.Handled > 0 && u.FlowSetupP99 != 0 {
			t.Errorf("second %d: pre-attack p99 %d, want 0", s.Sec, u.FlowSetupP99)
		}
	}
	// The backlog keeps draining after the attack stops at 18, and those
	// late pops must measure residence against the advancing clock (the
	// HandleNAt path), not the last Submit tick.
	post := false
	for _, s := range samples {
		if s.Sec > 18 && s.Upcall.Handled > 0 && s.Upcall.FlowSetupP99 > 0 {
			post = true
		}
	}
	if !post {
		t.Error("no post-attack second recorded positive residence while draining the backlog")
	}
}
