package dataplane

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/trace"
	"tse/internal/vswitch"
)

// This file is the wall-clock counterpart of scenario.go: instead of a
// virtual-time cost model, a trace replayed through the real pipeline
// (EMC → megaflow scan → slow path) as fast as the host can ingest it,
// reporting achieved Mpps. The virtual-time scenarios answer "what does
// the paper's testbed see"; the replay mode answers "what does *this*
// implementation actually sustain".

// ReplayConfig describes one wall-clock replay run.
type ReplayConfig struct {
	// Use selects the tenant ACL (SipSpDp when zero-valued and Table is
	// nil).
	Use flowtable.UseCase
	// Table overrides the ACL; when nil it is built from Use.
	Table *flowtable.Table
	// Workers is the PMD pool size (1 when <= 0). Single-worker pools
	// dispatch serially: a goroutine handoff per burst buys nothing on
	// one core.
	Workers int
	// Ports is the vport count (4 when <= 0); must cover the trace's
	// in_port values.
	Ports int
	// PrefetchDepth is handed to the pool's per-burst prefetch pass
	// (0 disables it).
	PrefetchDepth int
	// Chunk is the records decoded per dispatch (trace.DefaultChunk when
	// <= 0).
	Chunk int
	// TickSwitch runs the switch's idle-expiry sweep at trace tick
	// transitions.
	TickSwitch bool
}

// ReplayReport is the outcome of a replay run.
type ReplayReport struct {
	// Packets, WallMs and Mpps are the ingest numbers: records replayed,
	// host wall-clock spent, achieved millions of packets per second.
	Packets uint64
	WallMs  float64
	Mpps    float64
	// Masks is the megaflow mask count after the run — the TSE damage.
	Masks int
	// Totals is the pool's cumulative verdict/counter sum.
	Totals datapath.WorkerStats
}

// buildReplayPipeline assembles the switch, pool and replayer for one
// run.
func buildReplayPipeline(cfg ReplayConfig) (*vswitch.Switch, *datapath.Pool, *trace.Replayer, error) {
	tbl := cfg.Table
	if tbl == nil {
		use := cfg.Use
		if cfg.Use == flowtable.Baseline {
			use = flowtable.SipSpDp
		}
		tbl = flowtable.UseCaseACL(use, flowtable.ACLParams{})
	}
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return nil, nil, nil, err
	}
	workers, ports := cfg.Workers, cfg.Ports
	if workers <= 0 {
		workers = 1
	}
	if ports <= 0 {
		ports = 4
	}
	pool, err := datapath.New(datapath.Config{
		Switch: sw, Workers: workers, Ports: ports, PrefetchDepth: cfg.PrefetchDepth})
	if err != nil {
		return nil, nil, nil, err
	}
	rr := &trace.Replayer{
		Pool: pool, Chunk: cfg.Chunk, Serial: workers == 1, TickSwitch: cfg.TickSwitch}
	return sw, pool, rr, nil
}

func replayReport(sw *vswitch.Switch, res trace.Result) *ReplayReport {
	return &ReplayReport{
		Packets: res.Packets,
		WallMs:  float64(res.WallNs) / 1e6,
		Mpps:    res.Mpps,
		Masks:   sw.MFC().MaskCount(),
		Totals:  res.Totals,
	}
}

// RunReplay replays rd through a freshly built pipeline.
func RunReplay(cfg ReplayConfig, rd *trace.Reader) (*ReplayReport, error) {
	sw, pool, rr, err := buildReplayPipeline(cfg)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	return replayReport(sw, rr.Run(rd)), nil
}

// RunReplayRecords replays an in-memory record sequence through the same
// pipeline — the never-encoded side of the replay-vs-synthetic identity
// check the replay experiment reports.
func RunReplayRecords(cfg ReplayConfig, ticks []int64, ports []int, keys []bitvec.Vec) (*ReplayReport, error) {
	sw, pool, rr, err := buildReplayPipeline(cfg)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	return replayReport(sw, rr.RunRecords(ticks, ports, keys)), nil
}

// ReplayPreset names a canned replay workload.
type ReplayPreset string

const (
	// ReplayVictimMix is the no-attack baseline: a 64-flow victim mix in
	// EMC-hit steady state — the wire-rate ceiling of the pipeline.
	ReplayVictimMix ReplayPreset = "victim-mix"
	// ReplayTSE merges the co-located SipSpDp flood into the same mix:
	// the achieved rate collapses with the mask count, the paper's
	// throughput figure re-measured as ingest rather than modelled.
	ReplayTSE ReplayPreset = "tse-attack"
)

// ReplayScenario synthesises the preset's workload in memory and
// returns a reader over it plus the synth options used (for reporting).
func ReplayScenario(preset ReplayPreset, seconds int) (*trace.Reader, trace.SynthOptions, error) {
	if seconds <= 0 {
		seconds = 2
	}
	opts := trace.SynthOptions{Seconds: seconds, Victims: 64, VictimPps: 2000, Ports: 4}
	if preset == ReplayTSE {
		tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
		atk, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 1})
		if err != nil {
			return nil, opts, err
		}
		opts.Attack, opts.AttackPps = atk, 20000
	} else if preset != ReplayVictimMix {
		return nil, opts, fmt.Errorf("dataplane: unknown replay preset %q", preset)
	}
	var buf trace.Buffer
	w, err := trace.NewWriter(&buf, bitvec.IPv4Tuple)
	if err != nil {
		return nil, opts, err
	}
	if err := trace.Synthesize(w, opts); err != nil {
		return nil, opts, err
	}
	rd, err := trace.NewReader(buf.Bytes())
	if err != nil {
		return nil, opts, err
	}
	return rd, opts, nil
}
