package dataplane

import (
	"fmt"
	"math"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/telemetry"
	"tse/internal/vswitch"
)

// This file implements the time-stepped attack simulator that regenerates
// the Fig. 8 time series: victims offering load, an attacker replaying an
// adversarial trace at a configured rate, the real switch in the middle,
// and the cost model arbitrating the per-second CPU budget.

// Victim is one benign flow (an iperf session in the paper's testbeds).
type Victim struct {
	// Name labels the series ("Victim 1").
	Name string
	// Header is the flow's representative classifier key; all its packets
	// share it (single transport connection).
	Header bitvec.Vec
	// Port is the ingress vport the flow arrives on. Asynchronous runs
	// key upcall queues and admission quotas on it (a victim on its own
	// vport never shares a bucket with the flood); once any victim or
	// phase names a port, the multi-core synchronous runner pins flows to
	// workers by port too (rxq-to-PMD assignment) instead of by RSS hash.
	Port int
	// OfferedGbps is the offered load (iperf full rate).
	OfferedGbps float64
	// StartSec is the virtual second the flow begins.
	StartSec int
	// EstablishedProtection, if > 0, is the fraction of an established
	// flow's packets that bypass the megaflow scan. This phenomenological
	// knob reproduces the Fig. 8b anomaly the paper observed on OpenStack
	// ("the attack is effective only against newly established target
	// flows but causes minor harm to long-lasting flows"; the OVS authors
	// could not explain it, §5.5). Zero for mechanistic scenarios.
	EstablishedProtection float64
	// EstablishedAfterSec is how many consecutive seconds at >= 50 % of
	// the offered rate make the flow "established".
	EstablishedAfterSec int

	streak      int
	established bool
}

// AttackPhase is one attacker activity interval.
type AttackPhase struct {
	// Trace is replayed cyclically (keeping the spawned megaflows warm).
	Trace *core.Trace
	// Port is the ingress vport the attack arrives on (see Victim.Port).
	Port int
	// RatePps is the attack packet rate.
	RatePps int
	// StartSec (inclusive) and StopSec (exclusive) bound the phase.
	StartSec, StopSec int
	// InjectACL, if non-nil, replaces the switch's ACL when the phase
	// starts — the Fig. 8c Kubernetes move where the attacker installs
	// the malicious ACL mid-experiment (t2). The switch is rebuilt with
	// the same configuration but the new table.
	InjectACL *flowtable.Table
}

// Scenario wires a complete experiment.
type Scenario struct {
	// Name labels the experiment.
	Name string
	// Switch is the device under test.
	Switch *vswitch.Switch
	// NIC selects the cost profile.
	NIC NICProfile
	// BudgetOverride, if > 0, replaces the calibrated CPU budget
	// (the Fig. 8c Kubernetes testbed is a 2-core vagrant box, far weaker
	// than the synthetic server).
	BudgetOverride float64
	// Victims are the benign flows.
	Victims []*Victim
	// Phases are the attacker activity intervals.
	Phases []AttackPhase
	// DurationSec is the experiment length.
	DurationSec int
	// Workers selects the number of PMD-style datapath workers sharing the
	// switch; <= 1 runs the classic single-core pipeline. With N > 1
	// workers, packets are sharded RSS-style (see internal/datapath), the
	// scenario budget becomes a *per-core* budget — adding cores adds
	// capacity, as adding PMD threads does in OVS — and each Sample
	// carries per-worker series. The megaflow cache stays shared, so the
	// attack's mask count taxes every core's lookups.
	Workers int
	// Upcall, when non-nil, switches the run to the asynchronous slow
	// path: misses enqueue into bounded per-worker upcall queues drained
	// by a modelled handler service rate, with a revalidator loop
	// replacing inline idle expiry. See upcall.go; Workers <= 1 runs one
	// worker over the datapath pool.
	Upcall *UpcallParams
	// Telemetry, when non-nil, threads the hub's registry, journal and
	// tracer through the asynchronous run: the switch, classifier, PMD
	// pool, upcall subsystem and revalidator attach their metric families,
	// control-plane events (ACL swaps, fault injections, breaker
	// transitions, quota retunes, sweeps) land in the journal, and sampled
	// upcalls get trace spans. Any hub field may be nil. The synchronous
	// runners ignore it — the async path is where the slow-path machinery
	// this layer observes lives.
	Telemetry *telemetry.Hub
}

// Sample is one per-second observation.
type Sample struct {
	// Sec is the virtual time.
	Sec int
	// VictimGbps has one throughput per scenario victim (zero before its
	// start).
	VictimGbps []float64
	// TotalVictimGbps sums VictimGbps (the "Victim SUM" series of
	// Fig. 8a).
	TotalVictimGbps float64
	// AttackPps is the attack rate in effect.
	AttackPps int
	// Masks and Entries snapshot the MFC (the megaflow count axis of
	// Fig. 8c).
	Masks, Entries int
	// AttackCost is the CPU share consumed by attack traffic, and Budget
	// the total, letting callers derive slow-path load. For multi-core
	// runs Budget is the aggregate across workers.
	AttackCost, Budget float64
	// WorkerAttackCost is the attack CPU cost absorbed by each worker and
	// WorkerVictimGbps the victim throughput served by each worker; both
	// are nil for single-core runs.
	WorkerAttackCost []float64
	WorkerVictimGbps []float64
	// Upcall carries the per-second queue/handler/revalidator series of
	// asynchronous-slow-path runs; nil otherwise.
	Upcall *UpcallSample
}

// portCount returns the number of ingress vports the scenario's traffic
// mix names (1 + the highest port in use).
func (sc *Scenario) portCount() int {
	n := 1
	for _, v := range sc.Victims {
		if v.Port+1 > n {
			n = v.Port + 1
		}
	}
	for i := range sc.Phases {
		if sc.Phases[i].Port+1 > n {
			n = sc.Phases[i].Port + 1
		}
	}
	return n
}

// Run executes the scenario and returns one sample per second.
func (sc *Scenario) Run() ([]Sample, error) {
	if sc.Switch == nil {
		return nil, fmt.Errorf("dataplane: scenario %q has no switch", sc.Name)
	}
	if err := sc.NIC.Validate(); err != nil {
		return nil, err
	}
	model := NewModel(sc.NIC)
	budget := model.Budget()
	if sc.BudgetOverride > 0 {
		budget = sc.BudgetOverride
	}
	if sc.Upcall != nil {
		return sc.runAsync(budget)
	}
	if sc.Workers > 1 {
		return sc.runMulticore(budget)
	}
	cursor := make([]int, len(sc.Phases)) // per-phase trace replay position

	samples := make([]Sample, 0, sc.DurationSec)
	for t := 0; t < sc.DurationSec; t++ {
		now := int64(t)
		sc.Switch.Tick(now) // 10 s idle eviction

		// Attack activity.
		attackCost := 0.0
		attackPps := 0
		for i := range sc.Phases {
			ph := &sc.Phases[i]
			if t < ph.StartSec || t >= ph.StopSec {
				continue
			}
			if t == ph.StartSec && ph.InjectACL != nil {
				if err := sc.swapACL(ph.InjectACL); err != nil {
					return nil, err
				}
			}
			attackPps += ph.RatePps
			attackCost += sc.replay(ph, &cursor[i], now, sc.NIC)
		}

		// Victims: probe each flow's current classification cost.
		remaining := budget - attackCost
		if remaining < 0 {
			remaining = 0
		}
		costs := make([]float64, len(sc.Victims))
		offered := make([]float64, len(sc.Victims))
		for i, v := range sc.Victims {
			if t < v.StartSec {
				continue
			}
			verdict := sc.Switch.Process(v.Header, now)
			costs[i] = sc.victimCost(v, verdict)
			offered[i] = v.OfferedGbps * 1e9 / 8 / PacketBytes // pps
		}

		pps := waterfill(offered, costs, remaining, sc.NIC.LinePps())

		sample := Sample{
			Sec:        t,
			VictimGbps: make([]float64, len(sc.Victims)),
			AttackPps:  attackPps,
			Masks:      sc.Switch.MFC().MaskCount(),
			Entries:    sc.Switch.MFC().EntryCount(),
			AttackCost: attackCost,
			Budget:     budget,
		}
		for i, v := range sc.Victims {
			g := pps[i] * PacketBytes * 8 / 1e9
			sample.VictimGbps[i] = g
			sample.TotalVictimGbps += g
			v.trackEstablishment(t, g)
		}
		samples = append(samples, sample)
	}
	return samples, nil
}

// runMulticore executes the scenario over a PMD-style worker pool: attack
// and victim packets shard to workers by RSS hash — or, when the traffic
// mix names ingress vports, by port (rxq-to-PMD assignment, matching the
// async runner) — each worker has its own per-core CPU budget, and the
// samples carry per-worker series. The pool's
// per-worker EMCs are disabled: the simulator prices each victim flow from
// one probe packet per second, which with an EMC in front would always be
// an exact-match hit and never observe the megaflow scan cost the attack
// inflates (the same reason the Fig. 8 scenarios disable the switch-level
// microflow cache).
func (sc *Scenario) runMulticore(perCore float64) ([]Sample, error) {
	usePorts := sc.portCount() > 1
	cfg := datapath.Config{Switch: sc.Switch, Workers: sc.Workers, DisableEMC: true}
	if usePorts {
		cfg.Ports = sc.portCount()
	}
	pool, err := datapath.New(cfg)
	if err != nil {
		return nil, err
	}
	nw := pool.Workers()
	cursor := make([]int, len(sc.Phases))
	samples := make([]Sample, 0, sc.DurationSec)
	var batch []bitvec.Vec
	var ports []int
	var verdicts []vswitch.Verdict
	for t := 0; t < sc.DurationSec; t++ {
		now := int64(t)
		sc.Switch.Tick(now)

		// Attack activity, sharded across the workers.
		workerAttack := make([]float64, nw)
		attackPps := 0
		for i := range sc.Phases {
			ph := &sc.Phases[i]
			if t < ph.StartSec || t >= ph.StopSec {
				continue
			}
			if t == ph.StartSec && ph.InjectACL != nil {
				if err := sc.swapACL(ph.InjectACL); err != nil {
					return nil, err
				}
				pool.FlushEMC()
			}
			attackPps += ph.RatePps
			tr := ph.Trace
			if tr == nil || tr.Len() == 0 {
				continue
			}
			batch = batch[:0]
			ports = ports[:0]
			for k := 0; k < ph.RatePps; k++ {
				batch = append(batch, tr.Headers[cursor[i]%tr.Len()])
				ports = append(ports, ph.Port)
				cursor[i]++
			}
			if usePorts {
				verdicts = pool.ProcessBatchSerialPorts(ports, batch, now, verdicts)
			} else {
				verdicts = pool.ProcessBatchSerial(batch, now, verdicts)
			}
			assign := pool.Assignments()
			for k, v := range verdicts[:len(batch)] {
				workerAttack[assign[k]] += verdictCost(v, sc.NIC)
			}
		}

		// Victims: per-flow classification cost and RSS worker assignment.
		costs := make([]float64, len(sc.Victims))
		offered := make([]float64, len(sc.Victims))
		workerOf := make([]int, len(sc.Victims))
		for i, v := range sc.Victims {
			if usePorts {
				workerOf[i] = pool.PortWorker(v.Port)
			} else {
				workerOf[i] = pool.WorkerFor(v.Header)
			}
			if t < v.StartSec {
				continue
			}
			verdict := sc.Switch.Process(v.Header, now)
			costs[i] = sc.victimCost(v, verdict)
			offered[i] = v.OfferedGbps * 1e9 / 8 / PacketBytes // pps
		}

		pps := waterfillWorkers(nw, workerOf, offered, costs, workerAttack,
			perCore, sc.NIC.LinePps())

		sample := Sample{
			Sec:              t,
			VictimGbps:       make([]float64, len(sc.Victims)),
			AttackPps:        attackPps,
			Masks:            sc.Switch.MFC().MaskCount(),
			Entries:          sc.Switch.MFC().EntryCount(),
			Budget:           perCore * float64(nw),
			WorkerAttackCost: workerAttack,
			WorkerVictimGbps: make([]float64, nw),
		}
		for _, c := range workerAttack {
			sample.AttackCost += c
		}
		for i, v := range sc.Victims {
			g := pps[i] * PacketBytes * 8 / 1e9
			sample.VictimGbps[i] = g
			sample.TotalVictimGbps += g
			sample.WorkerVictimGbps[workerOf[i]] += g
			v.trackEstablishment(t, g)
		}
		samples = append(samples, sample)
	}
	return samples, nil
}

// victimCost prices one victim packet from its probe verdict, including
// the Fig. 8b established-flow protection blend.
func (sc *Scenario) victimCost(v *Victim, verdict vswitch.Verdict) float64 {
	probes := float64(verdict.Probes)
	cost := (sc.NIC.BaseCost + sc.NIC.ProbeCost*probes) / sc.NIC.Coalesce
	if verdict.Path == vswitch.PathSlow {
		cost += sc.NIC.SlowPathCost / sc.NIC.Coalesce
	}
	if v.established && v.EstablishedProtection > 0 {
		cost = v.EstablishedProtection*sc.NIC.MicroflowCost +
			(1-v.EstablishedProtection)*cost
	}
	return cost
}

// trackEstablishment updates the flow's Fig. 8b establishment state from
// one second's achieved throughput.
func (v *Victim) trackEstablishment(t int, gbps float64) {
	if t < v.StartSec || v.OfferedGbps <= 0 {
		return
	}
	if gbps >= 0.5*v.OfferedGbps {
		v.streak++
	} else {
		v.streak = 0
	}
	if v.EstablishedAfterSec > 0 && v.streak >= v.EstablishedAfterSec {
		v.established = true
	}
}

// replay sends one second's worth of attack packets through the switch,
// cycling through the trace, and returns their total CPU cost.
func (sc *Scenario) replay(ph *AttackPhase, cursor *int, now int64, nic NICProfile) float64 {
	tr := ph.Trace
	if tr == nil || tr.Len() == 0 {
		return 0
	}
	cost := 0.0
	for k := 0; k < ph.RatePps; k++ {
		h := tr.Headers[*cursor%tr.Len()]
		*cursor++
		cost += verdictCost(sc.Switch.Process(h, now), nic)
	}
	return cost
}

// VerdictCost prices one attack packet by the cache layer that decided it
// — the per-packet cost model the cluster fabric's per-node tick loop
// shares with the scenario runners.
func VerdictCost(v vswitch.Verdict, nic NICProfile) float64 {
	return verdictCost(v, nic)
}

// VictimCost prices one benign packet from its probe verdict: the coalesced
// per-packet classification cost without the Fig. 8b establishment blend
// (which is per-Victim state the fleet does not model).
func VictimCost(v vswitch.Verdict, nic NICProfile) float64 {
	cost := (nic.BaseCost + nic.ProbeCost*float64(v.Probes)) / nic.Coalesce
	if v.Path == vswitch.PathSlow {
		cost += nic.SlowPathCost / nic.Coalesce
	}
	return cost
}

// WaterfillWorkers is the exported multi-core allocation step: the
// per-core budget waterfill over each worker's victims followed by one
// global pass for the shared line rate. The cluster fabric runs it per
// node with that node's worker count and attack-cost vector.
func WaterfillWorkers(nw int, workerOf []int, offered, costs, workerAttack []float64, perCore, linePps float64) []float64 {
	return waterfillWorkers(nw, workerOf, offered, costs, workerAttack, perCore, linePps)
}

// verdictCost prices one attack packet by the cache layer that decided it.
func verdictCost(v vswitch.Verdict, nic NICProfile) float64 {
	switch v.Path {
	case vswitch.PathMicroflow:
		return nic.MicroflowCost
	case vswitch.PathMegaflow:
		return nic.BaseCost + nic.ProbeCost*float64(v.Probes)
	case vswitch.PathSlow:
		return nic.BaseCost + nic.ProbeCost*float64(v.Probes) + nic.SlowPathCost
	case vswitch.PathUpcallPending, vswitch.PathUpcallDrop:
		// The datapath paid the full-scan miss; the slow-path
		// classification either runs later on the handler budget
		// (pending) or never (drop), so neither is charged to the core.
		return nic.BaseCost + nic.ProbeCost*float64(v.Probes)
	}
	return 0
}

// swapACL rebuilds the scenario switch around a new flow table, keeping
// the megaflow cache contents (OVS keeps the datapath cache across
// OpenFlow table updates until revalidation; for the Fig. 8c scenario the
// pre-injection cache holds only benign entries, so this is faithful
// enough and much simpler).
func (sc *Scenario) swapACL(tbl *flowtable.Table) error {
	_, err := sc.Switch.ReplaceTable(tbl)
	return err
}

// waterfillWorkers runs the per-core budget waterfill over each worker's
// victims, then one global pass for the shared line rate — the multi-core
// allocation step shared by the sync and async runners.
func waterfillWorkers(nw int, workerOf []int, offered, costs, workerAttack []float64, perCore, linePps float64) []float64 {
	pps := make([]float64, len(offered))
	for w := 0; w < nw; w++ {
		var idxs []int
		for i := range offered {
			if workerOf[i] == w && offered[i] > 0 {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		subOff := make([]float64, len(idxs))
		subCost := make([]float64, len(idxs))
		for j, i := range idxs {
			subOff[j], subCost[j] = offered[i], costs[i]
		}
		remaining := perCore - workerAttack[w]
		if remaining < 0 {
			remaining = 0
		}
		alloc := waterfill(subOff, subCost, remaining, math.Inf(1))
		for j, i := range idxs {
			pps[i] = alloc[j]
		}
	}
	total := 0.0
	for _, x := range pps {
		total += x
	}
	if total > linePps && total > 0 {
		scale := linePps / total
		for i := range pps {
			pps[i] *= scale
		}
	}
	return pps
}

// waterfill allocates CPU budget and line rate across victims: each victim
// i wants offered[i] pps at costs[i] units per packet. Allocation is
// proportionally fair under both the CPU budget and the aggregate line
// rate (iperf TCP flows share the bottleneck roughly equally, Fig. 8a).
func waterfill(offered, costs []float64, budget, linePps float64) []float64 {
	pps := make([]float64, len(offered))
	totalCost := 0.0
	totalPps := 0.0
	for i := range offered {
		pps[i] = offered[i]
		totalCost += offered[i] * costs[i]
		totalPps += offered[i]
	}
	if totalCost > budget && totalCost > 0 {
		scale := budget / totalCost
		totalPps = 0
		for i := range pps {
			pps[i] *= scale
			totalPps += pps[i]
		}
	}
	if totalPps > linePps && totalPps > 0 {
		scale := linePps / totalPps
		for i := range pps {
			pps[i] *= scale
		}
	}
	return pps
}
