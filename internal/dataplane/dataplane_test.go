package dataplane

import (
	"math"
	"testing"

	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %v invalid: %v", p, err)
		}
	}
	bad := TCPGroOff
	bad.Coalesce = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero coalesce accepted")
	}
}

func TestBaselineCalibration(t *testing.T) {
	// The software baseline must saturate 10 Gbps with a single mask.
	m := NewModel(TCPGroOff)
	if got := m.ThroughputForMasks(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("GRO OFF baseline = %v Gbps, want 10", got)
	}
	// FHO reaches ~30 Gbps at baseline (§5.4: "a huge boost ... ~30Gbps").
	fho := NewModel(FHO)
	if got := fho.ThroughputForMasks(1); got < 29 || got > 30.1 {
		t.Errorf("FHO baseline = %v Gbps, want ≈30", got)
	}
	// GRO ON stays at line rate at baseline.
	gro := NewModel(TCPGroOn)
	if got := gro.ThroughputForMasks(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("GRO ON baseline = %v Gbps", got)
	}
}

// TestFig9aAnchors checks the model against the paper's §5.4 degradation
// table (percent of each configuration's own baseline):
//
//	masks:       17     260    516    8200
//	GRO OFF:    ~53%   ~10%   ~4.7%  ~0.2%
//	GRO ON:     ~97%   ~95%   ~76%   ~3.9%
//	FHO:        ~88%   ~43%   ~29%   ~2.1%
//
// The model is a two-parameter linear fit per profile, so we accept each
// anchor within a factor band rather than exactly.
func TestFig9aAnchors(t *testing.T) {
	type band struct{ lo, hi float64 }
	anchors := map[string]map[int]band{
		"TCP GRO OFF": {17: {45, 65}, 260: {6, 12}, 516: {3, 6}, 8200: {0.1, 0.5}},
		"TCP GRO ON":  {17: {90, 100}, 260: {85, 100}, 516: {55, 85}, 8200: {2.5, 6}},
		"FHO ON":      {17: {80, 100}, 260: {25, 50}, 516: {15, 35}, 8200: {1, 3.5}},
		"UDP":         {17: {45, 70}, 260: {6, 14}, 516: {3, 7}, 8200: {0.1, 0.6}},
	}
	for _, prof := range Profiles {
		m := NewModel(prof)
		for masks, b := range anchors[prof.Name] {
			pct := m.BaselinePct(m.ThroughputForMasks(masks))
			if pct < b.lo || pct > b.hi {
				t.Errorf("%s @ %d masks: %.1f%% of baseline, want [%v, %v]",
					prof.Name, masks, pct, b.lo, b.hi)
			}
		}
	}
}

func TestThroughputMonotoneInMasks(t *testing.T) {
	for _, prof := range Profiles {
		m := NewModel(prof)
		prev := math.Inf(1)
		for _, masks := range []int{1, 17, 64, 260, 516, 2000, 8200} {
			g := m.ThroughputForMasks(masks)
			if g > prev+1e-12 {
				t.Fatalf("%s: throughput increased with masks at %d", prof.Name, masks)
			}
			prev = g
		}
	}
}

func TestFlowCompletionTime(t *testing.T) {
	// Fig. 9a secondary axis: 1 GB TCP with GRO OFF takes ~1 s at
	// baseline and hundreds of seconds with ~8200 masks.
	m := NewModel(TCPGroOff)
	base := m.FlowCompletionSec(1e9, 1)
	if base < 0.5 || base > 1.5 {
		t.Errorf("baseline FCT = %v s, want ≈0.8", base)
	}
	worst := m.FlowCompletionSec(1e9, 8200)
	if worst < 200 || worst > 700 {
		t.Errorf("FCT @8200 masks = %v s, want hundreds (paper: ~600)", worst)
	}
	// The FCT multiplier tracks the per-packet cost ratio
	// (base + probes)/(base + 1) — sub-linear in masks at low counts
	// because the fixed per-packet cost dominates, exactly why Fig. 9a's
	// FCT curve sits below the y=x/2 diagonal.
	ratio := m.FlowCompletionSec(1e9, 1000) / base
	if ratio < 30 || ratio > 70 {
		t.Errorf("FCT ratio @1000 masks = %v, want ≈46 (cost-ratio model)", ratio)
	}
}

func TestPacketCostShape(t *testing.T) {
	m := NewModel(TCPGroOff)
	if m.PacketCost(10) <= m.PacketCost(1) {
		t.Error("cost not increasing in probes")
	}
	g := NewModel(TCPGroOn)
	if g.PacketCost(10) >= m.PacketCost(10) {
		t.Error("coalescing should reduce per-wire-packet cost")
	}
	if m.Budget() <= 0 || m.Profile().Name != "TCP GRO OFF" {
		t.Error("model accessors broken")
	}
}

func TestWaterfill(t *testing.T) {
	// Plenty of budget: everyone gets their offered rate.
	pps := waterfill([]float64{100, 200}, []float64{1, 1}, 1e9, 1e9)
	if pps[0] != 100 || pps[1] != 200 {
		t.Errorf("unconstrained waterfill = %v", pps)
	}
	// CPU-bound: proportional scale-down.
	pps = waterfill([]float64{100, 100}, []float64{1, 1}, 100, 1e9)
	if math.Abs(pps[0]-50) > 1e-9 || math.Abs(pps[1]-50) > 1e-9 {
		t.Errorf("cpu-bound waterfill = %v", pps)
	}
	// Line-bound.
	pps = waterfill([]float64{100, 100}, []float64{0.001, 0.001}, 1e9, 100)
	if math.Abs(pps[0]+pps[1]-100) > 1e-9 {
		t.Errorf("line-bound waterfill = %v", pps)
	}
	// Zero offered load.
	pps = waterfill([]float64{0}, []float64{1}, 100, 100)
	if pps[0] != 0 {
		t.Errorf("zero-offered waterfill = %v", pps)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := (&Scenario{Name: "x"}).Run(); err == nil {
		t.Error("scenario without switch accepted")
	}
	tbl := flowtable.Fig1()
	sw, _ := vswitch.New(vswitch.Config{Table: tbl})
	bad := NICProfile{Name: "bad"}
	if _, err := (&Scenario{Switch: sw, NIC: bad, DurationSec: 1}).Run(); err == nil {
		t.Error("invalid NIC profile accepted")
	}
}

func mean(samples []Sample, from, to int) float64 {
	total, n := 0.0, 0
	for _, s := range samples {
		if s.Sec >= from && s.Sec < to {
			total += s.TotalVictimGbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// TestFig8aShape verifies the headline dynamics of Fig. 8a: ~9.7 Gbps
// aggregate before the attack, collapse below 0.5 Gbps while the attacker
// injects 100 pps during [30, 60), and recovery only ~10 s after the
// attack stops (the MFC idle timeout).
func TestFig8aShape(t *testing.T) {
	sc, err := Fig8aScenario()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pre := mean(samples, 10, 30); pre < 9.5 {
		t.Errorf("pre-attack aggregate = %.2f Gbps, want ≈9.7", pre)
	}
	if during := mean(samples, 40, 60); during > 0.5 {
		t.Errorf("under attack aggregate = %.2f Gbps, want < 0.5 (paper)", during)
	}
	// Still degraded right after the attack stops (entries idle out only
	// after 10 s)...
	if hold := mean(samples, 61, 68); hold > 2 {
		t.Errorf("t=61..68 aggregate = %.2f Gbps; recovery too fast", hold)
	}
	// ...fully recovered after the idle timeout.
	if post := mean(samples, 72, 90); post < 9.5 {
		t.Errorf("post-recovery aggregate = %.2f Gbps, want ≈9.7", post)
	}
	// The three victims share fairly.
	last := samples[len(samples)-1]
	for i, g := range last.VictimGbps {
		if math.Abs(g-9.7/3) > 0.5 {
			t.Errorf("victim %d final = %.2f Gbps, want ≈3.23", i, g)
		}
	}
}

// TestFig8bShape verifies Fig. 8b: >90 % reduction while attacker and
// victim are both active, recovery 10 s after the attacker stops, and only
// minor damage when the attack restarts against the long-lived flow.
func TestFig8bShape(t *testing.T) {
	sc, err := Fig8bScenario()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	offered := 1.3
	if during := mean(samples, 35, 60); during > 0.2*offered {
		t.Errorf("victim under attack = %.2f Gbps, want >90%% reduction from %.1f", during, offered)
	}
	if post := mean(samples, 72, 90); post < 0.95*offered {
		t.Errorf("victim after recovery = %.2f Gbps, want ≈%.1f", post, offered)
	}
	// Re-activation at t=90: "only a minor damage ... (about 10% drop)".
	if re := mean(samples, 95, 120); re < 0.7*offered {
		t.Errorf("victim during re-attack = %.2f Gbps, want minor damage only", re)
	}
}

// TestFig8cShape verifies Fig. 8c: full rate before the ACL injection
// (the 1000 pps attack against the benign ACL is a minor glitch), a sharp
// drop after t2 = 60, and (near-)full denial of service after the rate
// doubles at t4 = 120.
func TestFig8cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 8c simulation replays ~200k packets; skipped with -short")
	}
	sc, err := Fig8cScenario()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pre := mean(samples, 10, 30); pre < 0.95 {
		t.Errorf("pre-attack = %.2f Gbps, want ≈1.0", pre)
	}
	if glitch := mean(samples, 35, 60); glitch < 0.9 {
		t.Errorf("1000 pps against benign ACL = %.2f Gbps, want minor glitch only", glitch)
	}
	if post := mean(samples, 70, 115); post > 0.6 {
		t.Errorf("after ACL injection = %.2f Gbps, want sharp drop (paper: ~80%%)", post)
	}
	if dos := mean(samples, 125, 150); dos > 0.25 {
		t.Errorf("after rate doubling = %.2f Gbps, want near-zero (full DoS)", dos)
	}
	// The megaflow explosion is visible on the secondary axis (Fig. 8c
	// plots the megaflow count reaching thousands).
	peak := 0
	for _, s := range samples {
		if s.Masks > peak {
			peak = s.Masks
		}
	}
	if peak < 8000 {
		t.Errorf("peak masks = %d, want > 8000", peak)
	}
}

// TestStagedCostModel pins the staged-lookup pricing: with SkippedProbeCost
// unset the staged throughput equals the unstaged one exactly (staging off
// is the calibrated default), and with a cheaper skipped probe the victim's
// modelled throughput improves monotonically with the discount while never
// beating the single-mask baseline.
func TestStagedCostModel(t *testing.T) {
	base := NewModel(TCPGroOff)
	for _, masks := range []int{1, 17, 516, 8200} {
		if got, want := base.ThroughputForMasksStaged(masks), base.ThroughputForMasks(masks); got != want {
			t.Errorf("masks=%d: staged %v != unstaged %v with staging off", masks, got, want)
		}
	}
	prof := TCPGroOff
	prof.SkippedProbeCost = prof.ProbeCost * 0.4
	m := NewModel(prof)
	for _, masks := range []int{17, 516, 8200} {
		off := m.ThroughputForMasks(masks)
		on := m.ThroughputForMasksStaged(masks)
		if on <= off {
			t.Errorf("masks=%d: staged %v not faster than unstaged %v", masks, on, off)
		}
		if baseline := m.ThroughputForMasks(1); on > baseline {
			t.Errorf("masks=%d: staged %v beats the 1-mask baseline %v", masks, on, baseline)
		}
	}
	// Packet-cost identity: probes all skipped but one, discount applied
	// to exactly probes-1 of them.
	p := m.StagedPacketCost(11, 10)
	want := (prof.BaseCost + prof.ProbeCost*1 + prof.SkippedProbeCost*10) / prof.Coalesce
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("StagedPacketCost = %v, want %v", p, want)
	}
}
