package dataplane

import (
	"math"

	"tse/internal/bitvec"
	"tse/internal/datapath"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// This file implements the asynchronous-slow-path scenario dimension: the
// time-stepped simulator driven over the upcall subsystem, regenerating
// the slow-path saturation regime the paper's attack creates (every attack
// packet is a flow miss; the queue bounds, fairness quotas and handler
// service rate decide who gets slow-path service and whose megaflows get
// installed).

// UpcallParams switches a scenario to the asynchronous slow path.
type UpcallParams struct {
	// QueueCap bounds each worker's upcall queue (0 = unbounded).
	QueueCap int
	// QuotaPerWorker is the per-source per-second admission quota, the
	// OVS-style upcall rate limit (0 = off).
	QuotaPerWorker int
	// HandledPerSec is the handler service rate: how many upcalls the
	// slow-path daemon classifies per virtual second (<= 0 = unlimited —
	// the whole backlog drains every second). This is the saturation
	// knob: the paper's testbed saturates ovs-vswitchd towards 50k
	// upcalls/s (Fig. 9c).
	HandledPerSec int
	// DisableDedup turns off flow-miss deduplication (ablation).
	DisableDedup bool
	// RevalidateSec is the revalidator cadence in virtual seconds; <= 0
	// selects 1. The revalidator replaces the inline Switch.Tick idle
	// expiry and additionally re-checks entries against the current flow
	// table, so mid-run ACL injections take effect at this cadence.
	RevalidateSec int64
}

// UpcallSample is the per-second queue/handler/revalidator series of an
// asynchronous run.
type UpcallSample struct {
	// Enqueued, Deduped, QueueDrops and QuotaDrops are this second's
	// admission outcomes; Handled is the number of upcalls the handler
	// budget served and Installed the megaflows that produced.
	Enqueued, Deduped, QueueDrops, QuotaDrops, Handled, Installed int
	// Backlog is the queue depth left at the end of the second.
	Backlog int
	// Expired and Invalidated are the revalidator's deletions this second.
	Expired, Invalidated int
	// HandlerCost is the CPU this second's handler work consumed, in the
	// same units as Sample.AttackCost. Handler threads are separate from
	// the PMD cores (as ovs-vswitchd is), so it is reported, not
	// subtracted from the per-core budgets.
	HandlerCost float64
}

// runAsync executes the scenario over a PMD-style pool whose misses go
// through the upcall subsystem in fire-and-forget mode, drained once per
// virtual second by the modelled handler service rate. Per-worker EMCs are
// disabled for the same observability reason as runMulticore.
func (sc *Scenario) runAsync(perCore float64) ([]Sample, error) {
	up := sc.Upcall
	nw := sc.Workers
	if nw < 1 {
		nw = 1
	}
	pool, err := datapath.New(datapath.Config{
		Switch:  sc.Switch,
		Workers: nw,
		// Handlers stays 0: the simulator owns the drain (HandleN below)
		// so runs are deterministic.
		Upcall: &upcall.Options{
			QueueCap:       up.QueueCap,
			QuotaPerSource: up.QuotaPerWorker,
			DisableDedup:   up.DisableDedup,
		},
		DisableEMC: true,
	})
	if err != nil {
		return nil, err
	}
	rv, err := upcall.NewRevalidator(upcall.RevalidatorConfig{
		Switch: sc.Switch, IntervalSec: up.RevalidateSec})
	if err != nil {
		return nil, err
	}
	sub := pool.Upcalls()

	cursor := make([]int, len(sc.Phases))
	samples := make([]Sample, 0, sc.DurationSec)
	var batch []bitvec.Vec
	var verdicts []vswitch.Verdict
	var vIdx []int
	prevStats := sub.Stats()
	prevInstalls := sc.Switch.Counters().Installs
	for t := 0; t < sc.DurationSec; t++ {
		now := int64(t)
		// The revalidator owns megaflow lifecycle: idle expiry plus
		// dump-and-check against the current table (no Switch.Tick here).
		rvRes := rv.Tick(now)

		workerAttack := make([]float64, nw)
		costs := make([]float64, len(sc.Victims))
		offered := make([]float64, len(sc.Victims))
		workerOf := make([]int, len(sc.Victims))

		// Victims submit first: within one virtual second arrival order
		// is arbitrary, and a steady one-probe-per-second flow plausibly
		// lands ahead of parts of the burst — this also keeps the
		// per-source quota from starving a victim behind the same
		// second's flood, which is the quota's per-port intent in OVS.
		batch, vIdx = batch[:0], vIdx[:0]
		for i, v := range sc.Victims {
			workerOf[i] = pool.WorkerFor(v.Header)
			if t < v.StartSec {
				continue
			}
			batch = append(batch, v.Header)
			vIdx = append(vIdx, i)
			offered[i] = v.OfferedGbps * 1e9 / 8 / PacketBytes // pps
		}
		verdicts = pool.ProcessBatchDeferred(batch, now, verdicts)
		for k, i := range vIdx {
			costs[i] = sc.victimCost(sc.Victims[i], verdicts[k])
		}

		// Attack activity, sharded across the workers.
		attackPps := 0
		for i := range sc.Phases {
			ph := &sc.Phases[i]
			if t < ph.StartSec || t >= ph.StopSec {
				continue
			}
			if t == ph.StartSec && ph.InjectACL != nil {
				// Asynchronous deployment: the table swap is applied
				// without an inline sweep; the revalidator's next pass
				// deletes stale megaflows (dump-and-check).
				if err := sc.Switch.SwapTable(ph.InjectACL); err != nil {
					return nil, err
				}
				pool.FlushEMC()
			}
			attackPps += ph.RatePps
			tr := ph.Trace
			if tr == nil || tr.Len() == 0 {
				continue
			}
			batch = batch[:0]
			for k := 0; k < ph.RatePps; k++ {
				batch = append(batch, tr.Headers[cursor[i]%tr.Len()])
				cursor[i]++
			}
			verdicts = pool.ProcessBatchDeferred(batch, now, verdicts)
			assign := pool.Assignments()
			for k, v := range verdicts[:len(batch)] {
				workerAttack[assign[k]] += verdictCost(v, sc.NIC)
			}
		}

		// Handlers drain on their own service budget, round-robin across
		// the worker queues; leftovers stay queued into the next second.
		budget := up.HandledPerSec
		if budget <= 0 {
			budget = math.MaxInt
		}
		handled := sub.HandleN(budget)

		st := sub.Stats()
		installs := sc.Switch.Counters().Installs
		usample := &UpcallSample{
			Enqueued:    int(st.Enqueued - prevStats.Enqueued),
			Deduped:     int(st.Deduped - prevStats.Deduped),
			QueueDrops:  int(st.QueueDrops - prevStats.QueueDrops),
			QuotaDrops:  int(st.QuotaDrops - prevStats.QuotaDrops),
			Handled:     handled,
			Installed:   int(installs - prevInstalls),
			Backlog:     st.Backlog,
			Expired:     rvRes.Expired,
			Invalidated: rvRes.Invalidated,
			HandlerCost: float64(handled) * sc.NIC.SlowPathCost,
		}
		prevStats, prevInstalls = st, installs

		pps := waterfillWorkers(nw, workerOf, offered, costs, workerAttack,
			perCore, sc.NIC.LinePps())

		sample := Sample{
			Sec:              t,
			VictimGbps:       make([]float64, len(sc.Victims)),
			AttackPps:        attackPps,
			Masks:            sc.Switch.MFC().MaskCount(),
			Entries:          sc.Switch.MFC().EntryCount(),
			Budget:           perCore * float64(nw),
			WorkerAttackCost: workerAttack,
			WorkerVictimGbps: make([]float64, nw),
			Upcall:           usample,
		}
		for _, c := range workerAttack {
			sample.AttackCost += c
		}
		for i, v := range sc.Victims {
			g := pps[i] * PacketBytes * 8 / 1e9
			sample.VictimGbps[i] = g
			sample.TotalVictimGbps += g
			sample.WorkerVictimGbps[workerOf[i]] += g
			v.trackEstablishment(t, g)
		}
		samples = append(samples, sample)
	}
	return samples, nil
}
