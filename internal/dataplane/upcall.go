package dataplane

import (
	"math"

	"tse/internal/bitvec"
	"tse/internal/datapath"
	"tse/internal/faults"
	"tse/internal/telemetry"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// This file implements the asynchronous-slow-path scenario dimension: the
// time-stepped simulator driven over the upcall subsystem, regenerating
// the slow-path saturation regime the paper's attack creates (every attack
// packet is a flow miss; the queue bounds, fairness quotas and handler
// service rate decide who gets slow-path service and whose megaflows get
// installed). Queues and quotas are keyed by ingress vport — the
// granularity OVS rate-limits upcalls at — so per-port traffic mixes
// (attacker port vs victim ports) exercise the fairness story exactly.

// UpcallParams switches a scenario to the asynchronous slow path.
type UpcallParams struct {
	// QueueCap bounds each vport's upcall queue (0 = unbounded).
	QueueCap int
	// QuotaPerPort is the per-vport per-second admission quota, the
	// OVS-style upcall rate limit (0 = off). Ignored when Adaptive is
	// set: the controller owns the quota and re-tunes it within
	// [MinQuota, BaseQuota] every sweep, so Adaptive.BaseQuota is
	// authoritative.
	QuotaPerPort int
	// WorkerKeyedQuota keys queues and quotas on the PMD worker index
	// instead of the ingress vport — the legacy pre-vport behaviour, kept
	// as the ablation the portfairness experiment measures: a victim
	// sharing a worker with the flood then shares its admission bucket.
	WorkerKeyedQuota bool
	// Adaptive, when non-nil, closes the feedback loop: each revalidator
	// sweep measures every vport's megaflow footprint (plus churn) and
	// re-tunes its quota, so the flooding port throttles itself while
	// victim ports keep their full budget.
	Adaptive *upcall.AdaptiveQuota
	// HandledPerSec is the handler service rate: how many upcalls the
	// slow-path daemon classifies per virtual second (<= 0 = unlimited —
	// the whole backlog drains every second). This is the saturation
	// knob: the paper's testbed saturates ovs-vswitchd towards 50k
	// upcalls/s (Fig. 9c). Drained upcalls resolve in bursts that share
	// one megaflow-install transaction (upcall.Options.HandlerBurst).
	HandledPerSec int
	// DisableDedup turns off flow-miss deduplication (ablation).
	DisableDedup bool
	// RevalidateSec is the revalidator cadence in virtual seconds; <= 0
	// selects 1. The revalidator replaces the inline Switch.Tick idle
	// expiry and additionally re-checks entries against the current flow
	// table, so mid-run ACL injections take effect at this cadence.
	RevalidateSec int64

	// ModelledHandlers is the drive-mode handler fleet size the fault
	// model spreads HandledPerSec across (a dead handler costs its 1/N
	// service share); <= 0 selects 1. Only meaningful with Faults.
	ModelledHandlers int
	// StallTimeoutSec is the modelled supervisor's stall-detection horizon
	// in virtual seconds; <= 0 selects upcall.DefaultStallTimeoutSec.
	StallTimeoutSec int64
	// DisableSupervisor is the chaos ablation: dead handlers are never
	// respawned and their orphaned in-flight upcalls leak in the pending
	// table (see upcall.Options.DisableSupervisor).
	DisableSupervisor bool
	// FailOrphans fails orphaned in-flight upcalls with an error verdict
	// instead of requeueing them.
	FailOrphans bool
	// PendingAgeSec is the revalidator's orphaned-pending-entry reap
	// horizon (upcall.RevalidatorConfig.PendingAgeSec semantics: 0
	// defaults, negative disables).
	PendingAgeSec int64
	// BreakerSLOSec enables the per-port SLO circuit breaker at the given
	// backlog-residence p99 SLO; TripAfter, BreakerCooldownSec,
	// HalfOpenProbes and BreakerEWMAAlpha refine it (upcall.Breaker
	// semantics; zero values select the upcall defaults).
	BreakerSLOSec      int64
	TripAfter          int
	BreakerCooldownSec int64
	HalfOpenProbes     int
	BreakerEWMAAlpha   float64
	// Faults is the optional deterministic fault schedule, threaded into
	// the upcall subsystem (handler panics/stalls, delivery faults), the
	// revalidator (sweep stalls) and the switch (install errors).
	Faults *faults.Plan
}

// UpcallSample is the per-second queue/handler/revalidator series of an
// asynchronous run.
type UpcallSample struct {
	// Enqueued, Deduped, QueueDrops and QuotaDrops are this second's
	// admission outcomes; Handled is the number of upcalls the handler
	// budget served and Installed the megaflows that produced.
	Enqueued, Deduped, QueueDrops, QuotaDrops, Handled, Installed int
	// Backlog is the queue depth left at the end of the second.
	Backlog int
	// Expired and Invalidated are the revalidator's deletions this second.
	Expired, Invalidated int
	// HandlerCost is the CPU this second's handler work consumed, in the
	// same units as Sample.AttackCost. Handler threads are separate from
	// the PMD cores (as ovs-vswitchd is), so it is reported, not
	// subtracted from the per-core budgets.
	HandlerCost float64
	// PortQuota is each upcall source's admission quota in effect at the
	// end of the second (after any adaptive re-tune), and PortQuotaDrops
	// the second's quota refusals per source. Sources are vports, or PMD
	// workers under WorkerKeyedQuota.
	PortQuota      []int
	PortQuotaDrops []int
	// FlowSetupP50 and FlowSetupP99 are this second's flow-setup latency
	// percentiles in virtual seconds: how long the upcalls handled this
	// second sat queued between admission and handler pop (the queueing
	// delay a cache miss pays behind a flooded backlog before its
	// megaflow installs). -1 when no upcall was handled this second.
	FlowSetupP50, FlowSetupP99 int
	// PortFlowSetupP50/P99 split the same percentiles per upcall source,
	// aligned with PortQuota; -1 for sources that handled nothing this
	// second.
	PortFlowSetupP50, PortFlowSetupP99 []int
	// PendingFlows is the pending-table size at the end of the second: a
	// value that stays elevated after the backlog drains is the leak
	// signature the supervisor/reaper exist to prevent.
	PendingFlows int
	// HandlerPanics, StallsDetected and HandlerRestarts are this second's
	// supervisor events; Requeued counts orphaned in-flight upcalls
	// returned to the queues and PendingReaped aged-out pending entries
	// failed by the revalidator's reaper.
	HandlerPanics, StallsDetected, HandlerRestarts, Requeued, PendingReaped int
	// BreakerTrips counts breakers tripping open this second and
	// BreakerShed submissions fast-failed by non-closed breakers;
	// PortBreaker is each source's breaker phase at the end of the second
	// ("closed"/"open"/"half-open"), nil when the breaker is disabled.
	BreakerTrips, BreakerShed int
	PortBreaker               []string
	// InstallErrors counts megaflow installs failed by the injected
	// install fault this second; SweepStalls counts revalidator sweeps an
	// injected stall suppressed.
	InstallErrors, SweepStalls int
	// OrphanPressure is this second's dumped-entry count attributed to
	// ingress ports outside the upcall subsystem's source range
	// (upcall.RevalidatorStats.OrphanPressure delta): megaflow footprint
	// the adaptive controller measured but could not feed back into any
	// quota.
	OrphanPressure int
}

// portsOrNil returns the explicit ingress-port slice for port-aware
// scenarios, or nil so the pool falls back to RSS-derived dispatch.
func portsOrNil(usePorts bool, ports []int) []int {
	if usePorts {
		return ports
	}
	return nil
}

// runAsync executes the scenario over a PMD-style pool whose misses go
// through the vport-keyed upcall subsystem in fire-and-forget mode,
// drained once per virtual second by the modelled handler service rate.
// Per-worker EMCs are disabled for the same observability reason as
// runMulticore.
//
// Within each virtual second the victims' probes land mid-flood: half of
// each attack phase's packets are dispatched first, then the victims, then
// the rest. A steady one-probe-per-second flow arrives at an effectively
// uniform position inside the second, and granting it the head-of-second
// slot would hand every victim a fresh admission bucket before the flood —
// exactly the order-dependence the per-port quotas exist to remove.
func (sc *Scenario) runAsync(perCore float64) ([]Sample, error) {
	up := sc.Upcall
	nw := sc.Workers
	if nw < 1 {
		nw = 1
	}
	quota := up.QuotaPerPort
	if up.Adaptive != nil {
		// The adaptive controller owns the quota: its range is
		// [MinQuota, BaseQuota] and every sweep re-tunes within it, so a
		// different static QuotaPerPort could not survive the first sweep
		// anyway. BaseQuota is authoritative.
		quota = up.Adaptive.BaseQuota
	}
	// A scenario that never names an ingress port (all traffic on vport 0)
	// keeps the legacy port-oblivious shape: one vport per worker with
	// RSS-derived dispatch, so multi-worker runs still spread across the
	// cores exactly as before the port dimension existed. Naming ports
	// switches to explicit port-pinned dispatch.
	usePorts := sc.portCount() > 1
	ports := nw
	if usePorts {
		ports = sc.portCount()
	}
	// Unpack the optional telemetry hub; every consumer below is nil-safe.
	var reg *telemetry.Registry
	var journal *telemetry.Journal
	var tracer *telemetry.Tracer
	if sc.Telemetry != nil {
		reg, journal, tracer = sc.Telemetry.Reg, sc.Telemetry.Journal, sc.Telemetry.Tracer
	}
	if reg != nil {
		sc.Switch.AttachMetrics(reg)
	}
	pool, err := datapath.New(datapath.Config{
		Switch:         sc.Switch,
		Workers:        nw,
		Ports:          ports,
		SourceByWorker: up.WorkerKeyedQuota,
		Metrics:        reg,
		// Handlers stays 0: the simulator owns the drain (HandleN below)
		// so runs are deterministic.
		Upcall: &upcall.Options{
			QueueCap:          up.QueueCap,
			QuotaPerSource:    quota,
			DisableDedup:      up.DisableDedup,
			ModelledHandlers:  up.ModelledHandlers,
			StallTimeoutSec:   up.StallTimeoutSec,
			DisableSupervisor: up.DisableSupervisor,
			FailOrphans:       up.FailOrphans,
			Injector:          up.Faults,
			Breaker: upcall.Breaker{
				SLOSec:         up.BreakerSLOSec,
				TripAfter:      up.TripAfter,
				CooldownSec:    up.BreakerCooldownSec,
				HalfOpenProbes: up.HalfOpenProbes,
				EWMAAlpha:      up.BreakerEWMAAlpha,
			},
			Metrics: reg,
			Journal: journal,
			Tracer:  tracer,
		},
		DisableEMC: true,
	})
	if err != nil {
		return nil, err
	}
	if up.Faults != nil {
		// Install errors are the switch's side of the fault schedule: a
		// window during which HandleMissFrom refuses to install megaflows,
		// so every packet of the affected flows keeps missing.
		sc.Switch.SetInstallFault(up.Faults.InstallErrorAt)
	}
	sub := pool.Upcalls()
	rvCfg := upcall.RevalidatorConfig{
		Switch:        sc.Switch,
		IntervalSec:   up.RevalidateSec,
		PendingAgeSec: up.PendingAgeSec,
		Injector:      up.Faults,
		Journal:       journal,
		Metrics:       reg,
	}
	if up.Adaptive != nil {
		rvCfg.Subsystem = sub
		rvCfg.Adapt = up.Adaptive
	}
	if up.PendingAgeSec != 0 || up.Faults != nil {
		// The pending reaper needs the subsystem even without the adaptive
		// controller.
		rvCfg.Subsystem = sub
	}
	rv, err := upcall.NewRevalidator(rvCfg)
	if err != nil {
		return nil, err
	}

	cursor := make([]int, len(sc.Phases))
	injected := make([]bool, len(sc.Phases))
	samples := make([]Sample, 0, sc.DurationSec)
	var batch []bitvec.Vec
	var batchPorts []int
	var verdicts []vswitch.Verdict
	var vIdx []int
	prevStats := sub.Stats()
	prevPer := sub.PerSource()
	prevInstalls := sc.Switch.Counters().Installs
	prevInstallErrs := sc.Switch.Counters().InstallErrors
	prevRv := rv.Stats()
	for t := 0; t < sc.DurationSec; t++ {
		now := int64(t)
		// Journal this tick's scheduled fault injections before anything
		// fires, so the timeline shows cause (injection) strictly before
		// effect (panic, stall, shed). Delivery faults get their own kind.
		if journal != nil && up.Faults != nil {
			for _, ev := range up.Faults.ScheduledAt(now) {
				kind, actor := telemetry.EvFaultInjected, ev.Handler
				switch ev.Kind {
				case faults.DeliverDelay, faults.DeliverDuplicate:
					kind, actor = telemetry.EvDeliveryFault, ev.Source
				case faults.RevalidatorStall, faults.InstallError:
					actor = -1
				}
				journal.RecordNote(now, kind, actor, ev.Duration, ev.Kind.String())
			}
		}
		// The revalidator owns megaflow lifecycle: idle expiry plus
		// dump-and-check against the current table (and, in adaptive mode,
		// the per-port quota re-tune). No Switch.Tick here.
		rvRes := rv.Tick(now)

		workerAttack := make([]float64, nw)
		costs := make([]float64, len(sc.Victims))
		offered := make([]float64, len(sc.Victims))
		workerOf := make([]int, len(sc.Victims))
		attackPps := 0

		// replayPhase dispatches up to n of phase i's packets this second,
		// applying the phase's ACL injection on first activation.
		replayPhase := func(i, n int) error {
			ph := &sc.Phases[i]
			if t == ph.StartSec && ph.InjectACL != nil && !injected[i] {
				injected[i] = true
				// Asynchronous deployment: the table swap is applied
				// without an inline sweep; the revalidator's next pass
				// deletes stale megaflows (dump-and-check).
				if err := sc.Switch.SwapTable(ph.InjectACL); err != nil {
					return err
				}
				pool.FlushEMC()
				journal.RecordNote(now, telemetry.EvACLSwap, ph.Port, 0,
					"mid-run ACL injection")
			}
			tr := ph.Trace
			if tr == nil || tr.Len() == 0 || n <= 0 {
				return nil
			}
			batch, batchPorts = batch[:0], batchPorts[:0]
			for k := 0; k < n; k++ {
				batch = append(batch, tr.Headers[cursor[i]%tr.Len()])
				if usePorts {
					batchPorts = append(batchPorts, ph.Port)
				}
				cursor[i]++
			}
			verdicts = pool.ProcessBatchDeferredPorts(portsOrNil(usePorts, batchPorts), batch, now, verdicts)
			assign := pool.Assignments()
			for k, v := range verdicts[:len(batch)] {
				workerAttack[assign[k]] += verdictCost(v, sc.NIC)
			}
			return nil
		}

		active := func(i int) bool {
			return t >= sc.Phases[i].StartSec && t < sc.Phases[i].StopSec
		}

		// First half of the flood.
		for i := range sc.Phases {
			if !active(i) {
				continue
			}
			attackPps += sc.Phases[i].RatePps
			if err := replayPhase(i, sc.Phases[i].RatePps/2); err != nil {
				return nil, err
			}
		}

		// Victims probe mid-second.
		batch, batchPorts, vIdx = batch[:0], batchPorts[:0], vIdx[:0]
		for i, v := range sc.Victims {
			if usePorts {
				workerOf[i] = pool.PortWorker(v.Port)
			} else {
				workerOf[i] = pool.WorkerFor(v.Header)
			}
			if t < v.StartSec {
				continue
			}
			batch = append(batch, v.Header)
			if usePorts {
				batchPorts = append(batchPorts, v.Port)
			}
			vIdx = append(vIdx, i)
			offered[i] = v.OfferedGbps * 1e9 / 8 / PacketBytes // pps
		}
		verdicts = pool.ProcessBatchDeferredPorts(portsOrNil(usePorts, batchPorts), batch, now, verdicts)
		for k, i := range vIdx {
			costs[i] = sc.victimCost(sc.Victims[i], verdicts[k])
			if verdicts[k].Path == vswitch.PathUpcallDrop {
				// The flow's setup packet was refused at admission: the
				// datapath is dropping the flow on the floor, so it moves
				// no traffic this second. This is the loss the per-port
				// quotas protect victims from.
				offered[i] = 0
			}
		}

		// Second half of the flood.
		for i := range sc.Phases {
			if !active(i) {
				continue
			}
			if err := replayPhase(i, sc.Phases[i].RatePps-sc.Phases[i].RatePps/2); err != nil {
				return nil, err
			}
		}

		// Handlers drain on their own service budget, round-robin across
		// the vport queues; leftovers stay queued into the next second.
		budget := up.HandledPerSec
		if budget <= 0 {
			budget = math.MaxInt
		}
		handled := sub.HandleNAt(budget, now)
		// Breakers advance on the same cadence as the handler drain: each
		// virtual second is one observation interval.
		sub.TickBreakers(now)

		st := sub.Stats()
		per := sub.PerSource()
		counters := sc.Switch.Counters()
		installs := counters.Installs
		rvStats := rv.Stats()
		// This second's flow-setup latency distribution: the residence
		// histograms are cumulative, so the per-second series is the delta
		// against the previous sample's snapshot.
		resDelta := st.Residence.Delta(prevStats.Residence)
		usample := &UpcallSample{
			Enqueued:         int(st.Enqueued - prevStats.Enqueued),
			Deduped:          int(st.Deduped - prevStats.Deduped),
			QueueDrops:       int(st.QueueDrops - prevStats.QueueDrops),
			QuotaDrops:       int(st.QuotaDrops - prevStats.QuotaDrops),
			Handled:          handled,
			Installed:        int(installs - prevInstalls),
			Backlog:          st.Backlog,
			Expired:          rvRes.Expired,
			Invalidated:      rvRes.Invalidated,
			HandlerCost:      float64(handled) * sc.NIC.SlowPathCost,
			PortQuota:        make([]int, len(per)),
			PortQuotaDrops:   make([]int, len(per)),
			FlowSetupP50:     int(resDelta.P50()),
			FlowSetupP99:     int(resDelta.P99()),
			PortFlowSetupP50: make([]int, len(per)),
			PortFlowSetupP99: make([]int, len(per)),
			PendingFlows:     st.PendingFlows,
			HandlerPanics:    int(st.HandlerPanics - prevStats.HandlerPanics),
			StallsDetected:   int(st.StallsDetected - prevStats.StallsDetected),
			HandlerRestarts:  int(st.HandlerRestarts - prevStats.HandlerRestarts),
			Requeued:         int(st.Requeued - prevStats.Requeued),
			PendingReaped:    int(st.PendingReaped - prevStats.PendingReaped),
			BreakerTrips:     int(st.BreakerTrips - prevStats.BreakerTrips),
			BreakerShed:      int(st.BreakerShed - prevStats.BreakerShed),
			InstallErrors:    int(counters.InstallErrors - prevInstallErrs),
			SweepStalls:      int(rvStats.SweepStalls - prevRv.SweepStalls),
			OrphanPressure:   int(rvStats.OrphanPressure - prevRv.OrphanPressure),
		}
		if usample.InstallErrors > 0 {
			journal.Record(now, telemetry.EvInstallError, -1, int64(usample.InstallErrors))
		}
		if phases := sub.BreakerPhases(); phases != nil {
			usample.PortBreaker = make([]string, len(phases))
			for p, ph := range phases {
				usample.PortBreaker[p] = ph.String()
			}
		}
		for p := range per {
			usample.PortQuota[p] = sub.QuotaFor(p)
			usample.PortQuotaDrops[p] = int(per[p].QuotaDrops - prevPer[p].QuotaDrops)
			d := per[p].Residence.Delta(prevPer[p].Residence)
			usample.PortFlowSetupP50[p] = int(d.P50())
			usample.PortFlowSetupP99[p] = int(d.P99())
		}
		prevStats, prevPer, prevInstalls = st, per, installs
		prevInstallErrs, prevRv = counters.InstallErrors, rvStats

		pps := waterfillWorkers(nw, workerOf, offered, costs, workerAttack,
			perCore, sc.NIC.LinePps())

		sample := Sample{
			Sec:              t,
			VictimGbps:       make([]float64, len(sc.Victims)),
			AttackPps:        attackPps,
			Masks:            sc.Switch.MFC().MaskCount(),
			Entries:          sc.Switch.MFC().EntryCount(),
			Budget:           perCore * float64(nw),
			WorkerAttackCost: workerAttack,
			WorkerVictimGbps: make([]float64, nw),
			Upcall:           usample,
		}
		for _, c := range workerAttack {
			sample.AttackCost += c
		}
		for i, v := range sc.Victims {
			g := pps[i] * PacketBytes * 8 / 1e9
			sample.VictimGbps[i] = g
			sample.TotalVictimGbps += g
			sample.WorkerVictimGbps[workerOf[i]] += g
			v.trackEstablishment(t, g)
		}
		samples = append(samples, sample)
	}
	return samples, nil
}
