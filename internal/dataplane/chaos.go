package dataplane

import (
	"fmt"

	"tse/internal/faults"
)

// The chaos experiment: the port-fairness attack replayed while the slow
// path itself fails. The paper's attack degrades victims by *loading* the
// slow path; this scenario asks what happens when the slow path
// additionally *breaks* at the worst moment — a handler dies at attack
// peak, the revalidator wedges, installs fail — and measures whether the
// supervisor (panic respawn, stall detection), the pending-table reaper
// and the SLO circuit breaker return flow-setup latency to its pre-fault
// envelope within a bounded number of seconds.

// ChaosMode selects the self-healing configuration under the fault
// schedule.
type ChaosMode string

const (
	// ChaosFaultFree runs the full self-healing stack with no fault plan:
	// the baseline every recovery claim is measured against.
	ChaosFaultFree ChaosMode = "faultfree"
	// ChaosUnsupervised injects the fault schedule with the supervisor
	// disabled, the pending reaper off and no breaker: dead handlers stay
	// dead, their in-flight upcalls leak in the pending table, and the
	// backlog grows behind a halved service rate — the ablation that shows
	// what the machinery exists to prevent.
	ChaosUnsupervised ChaosMode = "unsupervised"
	// ChaosSupervised injects the same schedule with the supervisor, the
	// reaper and the SLO breaker on: panics respawn, stalls are detected
	// within StallTimeoutSec, orphans are requeued, aged pending entries
	// are reaped, and overloaded ports shed at admission instead of
	// queueing past the SLO.
	ChaosSupervised ChaosMode = "supervised"
)

// chaosPlan builds the deterministic fault schedule, timed against the
// port-fairness timeline (flood [5, 35), churn at 12/17/22/27/32, late
// victim joins at 15):
//
//   - t=23: handler 0 panics — one tick after the t=22 churn, so the
//     orphaned burst holds the victims' re-establishment upcalls.
//   - t=24..26: the revalidator stalls for 3 ticks — no expiry, no
//     invalidation, no reaping, no adaptive retune while the flood rages.
//   - t=26: megaflow installs fail for a tick — handled upcalls produce no
//     cache entries, so the same flows miss again.
//   - t=28: the flooding port's deliveries are delayed 2 ticks, and at
//     t=29 duplicated — the delivery faults dedup and idempotent resolve
//     must absorb.
//   - t=30..33: handler 1 wedges for 4 ticks; supervised runs detect the
//     stall after StallTimeoutSec and respawn.
//
// Every event lands inside the flood window so recovery is measured under
// sustained attack, not in the quiet tail.
func chaosPlan() *faults.Plan {
	return faults.NewPlan(
		faults.Event{Tick: 23, Kind: faults.HandlerPanic, Handler: 0},
		faults.Event{Tick: 24, Kind: faults.RevalidatorStall, Duration: 3},
		faults.Event{Tick: 26, Kind: faults.InstallError, Duration: 1},
		faults.Event{Tick: 28, Kind: faults.DeliverDelay, Source: 0, Duration: 2},
		faults.Event{Tick: 29, Kind: faults.DeliverDuplicate, Source: 0},
		faults.Event{Tick: 30, Kind: faults.HandlerStall, Handler: 1, Duration: 4},
	)
}

// ChaosScenario builds the chaos experiment for one mode. It derives from
// the port-keyed fairness scenario (static per-port quotas, so breaker and
// supervisor effects are not confounded with adaptive quota motion) with
// the handler budget halved to 32/s across 2 modelled handlers: tight
// enough service that the flood builds real backlog residence, which is
// what makes a dead handler hurt and gives the breaker a signal worth
// tripping on.
func ChaosScenario(mode ChaosMode) (*Scenario, error) {
	sc, err := PortFairnessScenario(FairnessPortKeyed)
	if err != nil {
		return nil, err
	}
	up := sc.Upcall
	up.HandledPerSec = 32
	up.ModelledHandlers = 2
	switch mode {
	case ChaosFaultFree:
		up.StallTimeoutSec = 1
		up.BreakerSLOSec = 2
		up.TripAfter = 3
	case ChaosUnsupervised:
		up.Faults = chaosPlan()
		up.DisableSupervisor = true
		up.PendingAgeSec = -1 // reaper off: let the leak show
	case ChaosSupervised:
		up.Faults = chaosPlan()
		up.StallTimeoutSec = 1
		up.BreakerSLOSec = 2
		up.TripAfter = 3
	default:
		return nil, fmt.Errorf("dataplane: unknown chaos mode %q", mode)
	}
	sc.Name = fmt.Sprintf("Chaos-SipSpDp-%s", mode)
	return sc, nil
}
