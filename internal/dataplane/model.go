// Package dataplane models the packet-processing performance of the
// simulated switch, regenerating the paper's throughput evaluations
// (Fig. 8a–c time series and the Fig. 9a mask sweep).
//
// Nothing here measures the host machine: the model prices every packet in
// abstract CPU cost units so results are deterministic and reproducible.
// Per Observation 1 the dominant term is linear in the number of mask
// probes; the constants below are fitted to the paper's published anchor
// points (see EXPERIMENTS.md for paper-vs-model tables), while the probe
// counts themselves come from the *real* TSS classifier in package tss.
package dataplane

import "fmt"

// PacketBytes is the modelled MTU-sized packet (the paper's iperf runs
// use standard 1500-byte MTU unless jumbo frames are enabled).
const PacketBytes = 1500

// NICProfile captures a NIC/driver configuration of Fig. 9a. Costs are in
// abstract CPU units; one unit ≈ one mask probe in the software classifier.
type NICProfile struct {
	// Name labels the curve as in Fig. 9a.
	Name string
	// BaseCost is the fixed per-classification cost (parsing, actions).
	BaseCost float64
	// ProbeCost is the cost of one TSS mask probe.
	ProbeCost float64
	// SkippedProbeCost is the cost of a probe the classifier's staged
	// lookup rejected at its first stage (one-or-two-word touch instead
	// of the full masked hash+compare). <= 0 means staging off: skipped
	// probes cost ProbeCost, preserving the paper-calibrated defaults.
	// The `stagedscan` experiment fits this constant from the measured
	// staged-vs-unstaged per-probe ratio of the real classifier.
	SkippedProbeCost float64
	// MicroflowCost prices an exact-match cache hit.
	MicroflowCost float64
	// SlowPathCost prices a full slow-path classification + install,
	// excluding the mask probes of the preceding MFC miss.
	SlowPathCost float64
	// Coalesce is the number of wire packets per classifier invocation:
	// 1 normally, ~16 with GRO/TSO jumbo coalescing (§5.4: offloads
	// assemble many small TCP packets into a single large buffer).
	Coalesce float64
	// LineRateGbps is the physical link capacity for this configuration.
	LineRateGbps float64
	// BudgetMultiplier scales the CPU budget: full hardware offload gave
	// the paper's testbed roughly a 3x boost (~30 Gbps, §5.4).
	BudgetMultiplier float64
}

// The four Fig. 9a configurations. Constants are fitted to the paper's
// anchors (GRO OFF: 17 masks -> ~53 %, 260 -> ~10 %, 516 -> ~4.7 %,
// 8200 -> ~0.2 % of baseline; see EXPERIMENTS.md).
var (
	// TCPGroOff is plain TCP with offloads disabled — the configuration
	// the paper reports in most figures.
	TCPGroOff = NICProfile{
		Name: "TCP GRO OFF", BaseCost: 10, ProbeCost: 1, MicroflowCost: 2,
		SlowPathCost: 50, Coalesce: 1, LineRateGbps: 10, BudgetMultiplier: 1,
	}
	// TCPGroOn enables generic receive offload + jumbo buffers: OVS sees
	// one large buffer per ~16 MTU packets.
	TCPGroOn = NICProfile{
		Name: "TCP GRO ON", BaseCost: 10, ProbeCost: 1, MicroflowCost: 2,
		SlowPathCost: 50, Coalesce: 16, LineRateGbps: 10, BudgetMultiplier: 1,
	}
	// FHO is full hardware offload (Mellanox CX-4): ~3x capacity and
	// much cheaper per-probe cost, but still linear in the mask count —
	// the TSS classifier in hardware "still remains vulnerable" (§5.4).
	FHO = NICProfile{
		Name: "FHO ON", BaseCost: 10, ProbeCost: 1.0 / 6, MicroflowCost: 2,
		SlowPathCost: 50, Coalesce: 1, LineRateGbps: 30, BudgetMultiplier: 3,
	}
	// UDPProfile is UDP traffic: offloads do not apply ("For UDP, these
	// settings take no effect", §5.4) and per-packet overhead is higher.
	UDPProfile = NICProfile{
		Name: "UDP", BaseCost: 12, ProbeCost: 1, MicroflowCost: 2,
		SlowPathCost: 50, Coalesce: 1, LineRateGbps: 9.5, BudgetMultiplier: 1,
	}
)

// Profiles lists the Fig. 9a configurations in presentation order.
var Profiles = []NICProfile{FHO, TCPGroOn, TCPGroOff, UDPProfile}

// LinePps converts the profile's line rate into MTU packets per second.
func (p NICProfile) LinePps() float64 {
	return p.LineRateGbps * 1e9 / 8 / PacketBytes
}

// referenceBudget is the CPU budget (cost units per second) of the
// baseline software configuration: exactly line rate with a single mask.
func referenceBudget() float64 {
	return TCPGroOff.LinePps() * (TCPGroOff.BaseCost + TCPGroOff.ProbeCost)
}

// Model prices packets under one NIC profile.
type Model struct {
	prof   NICProfile
	budget float64
}

// NewModel builds a model for the profile; the CPU budget is calibrated so
// the software baseline (1 mask, GRO OFF) exactly saturates 10 Gbps.
func NewModel(prof NICProfile) *Model {
	return &Model{prof: prof, budget: referenceBudget() * prof.BudgetMultiplier}
}

// Profile returns the model's NIC profile.
func (m *Model) Profile() NICProfile { return m.prof }

// Budget returns the per-second CPU budget in cost units.
func (m *Model) Budget() float64 { return m.budget }

// PacketCost prices one wire packet classified after the given number of
// mask probes.
func (m *Model) PacketCost(probes float64) float64 {
	return (m.prof.BaseCost + m.prof.ProbeCost*probes) / m.prof.Coalesce
}

// ThroughputGbps returns the steady-state throughput of a single flow
// whose packets each cost `probes` mask probes, with the whole budget
// available.
func (m *Model) ThroughputGbps(probes float64) float64 {
	pps := m.budget / m.PacketCost(probes)
	if line := m.prof.LinePps(); pps > line {
		pps = line
	}
	return pps * PacketBytes * 8 / 1e9
}

// ThroughputForMasks prices the victim flow at the expected probe count
// for a uniformly placed mask, (masks+1)/2 — the paper's own observation
// that "the flow completion time only increases half as high as the number
// of MFC masks" (§5.4).
func (m *Model) ThroughputForMasks(masks int) float64 {
	if masks < 1 {
		masks = 1
	}
	return m.ThroughputGbps((float64(masks) + 1) / 2)
}

// StagedPacketCost prices one wire packet whose classification spent
// `probes` mask probes, of which `skipped` bailed at their first stage
// (priced at SkippedProbeCost instead of ProbeCost).
func (m *Model) StagedPacketCost(probes, skipped float64) float64 {
	sc := m.prof.SkippedProbeCost
	if sc <= 0 {
		sc = m.prof.ProbeCost
	}
	return (m.prof.BaseCost + m.prof.ProbeCost*(probes-skipped) + sc*skipped) / m.prof.Coalesce
}

// ThroughputForMasksStaged is ThroughputForMasks under staged lookup: the
// victim's mask still sits at expected position (masks+1)/2, but every
// probe before it is a non-matching mask the staged scan rejects at its
// first stage, so only the final (matching) probe pays full ProbeCost.
// With SkippedProbeCost unset this equals ThroughputForMasks exactly.
func (m *Model) ThroughputForMasksStaged(masks int) float64 {
	if masks < 1 {
		masks = 1
	}
	probes := (float64(masks) + 1) / 2
	pps := m.budget / m.StagedPacketCost(probes, probes-1)
	if line := m.prof.LinePps(); pps > line {
		pps = line
	}
	return pps * PacketBytes * 8 / 1e9
}

// FlowCompletionSec returns the transfer time of a bulk TCP flow of the
// given size at the modelled throughput (Fig. 9a's secondary axis: 1 GB
// with GRO OFF).
func (m *Model) FlowCompletionSec(bytes float64, masks int) float64 {
	gbps := m.ThroughputForMasks(masks)
	return bytes * 8 / (gbps * 1e9)
}

// BaselinePct expresses a throughput as a percentage of the profile's own
// baseline (1 mask) throughput, as the paper reports its degradations.
func (m *Model) BaselinePct(gbps float64) float64 {
	base := m.ThroughputForMasks(1)
	if base == 0 {
		return 0
	}
	return 100 * gbps / base
}

// String renders the profile name.
func (p NICProfile) String() string { return p.Name }

// Validate sanity-checks a profile.
func (p NICProfile) Validate() error {
	if p.BaseCost <= 0 || p.ProbeCost <= 0 || p.Coalesce <= 0 ||
		p.LineRateGbps <= 0 || p.BudgetMultiplier <= 0 {
		return fmt.Errorf("dataplane: profile %q has non-positive parameters", p.Name)
	}
	return nil
}
