package dataplane

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/tss"
	"tse/internal/upcall"
	"tse/internal/vswitch"
)

// This file wires the three Fig. 8 experiments exactly as §5.4–§5.6
// describe them, so tests, the tsebench harness, and the examples share
// one definition.

// victimHeader builds the benign flow's classifier key: a TCP connection
// to the allowed destination port (matching rule #1 of the tenant ACL).
func victimHeader(srcIP uint32, srcPort, dstPort uint16) bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	sip, _ := l.FieldIndex("ip_src")
	dip, _ := l.FieldIndex("ip_dst")
	proto, _ := l.FieldIndex("ip_proto")
	sp, _ := l.FieldIndex("tp_src")
	dp, _ := l.FieldIndex("tp_dst")
	h.SetField(l, sip, uint64(srcIP))
	h.SetField(l, dip, 0xc0a80002) // 192.168.0.2: the victim service
	h.SetField(l, proto, 6)
	h.SetField(l, sp, uint64(srcPort))
	h.SetField(l, dp, uint64(dstPort))
	return h
}

// Fig8aScenario reproduces the synthetic-testbed run of Fig. 8a: three
// concurrent TCP victim flows on a 10 Gbps link (aggregating ~9.7 Gbps),
// a SipDp co-located attack at 100 pps active during [t1, t2) = [30, 60),
// and the 10 s recovery delay after t2 caused by the MFC idle timeout.
func Fig8aScenario() (*Scenario, error) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return nil, err
	}
	trace, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 1})
	if err != nil {
		return nil, err
	}
	victims := make([]*Victim, 3)
	for i := range victims {
		victims[i] = &Victim{
			Name:        fmt.Sprintf("Victim %d", i+1),
			Header:      victimHeader(0x0a000010+uint32(i), uint16(40000+i), 80),
			OfferedGbps: 9.7 / 3,
		}
	}
	return &Scenario{
		Name:        "Fig8a-synthetic-SipDp",
		Switch:      sw,
		NIC:         TCPGroOff,
		Victims:     victims,
		Phases:      []AttackPhase{{Trace: trace, RatePps: 100, StartSec: 30, StopSec: 60}},
		DurationSec: 90,
	}, nil
}

// Fig8bScenario reproduces the OpenStack run of Fig. 8b: the CMS API only
// permits the SipDp scenario (§5.5, §7); the attacker sends at 100 pps
// from t = 0, stops at t = 60, restarts at t = 90; the victim joins with a
// full-rate UDP iperf at t = 30. The victim's EstablishedProtection
// reproduces the paper's (unexplained) observation that the re-activated
// attack barely harms long-lasting flows.
func Fig8bScenario() (*Scenario, error) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return nil, err
	}
	trace, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 2})
	if err != nil {
		return nil, err
	}
	victim := &Victim{
		Name:                  "Victim",
		Header:                victimHeader(0x0a000020, 41000, 80),
		OfferedGbps:           1.3, // Fig. 8b's y-axis tops out at ~1.3 Gbps (UDP iperf)
		StartSec:              30,
		EstablishedProtection: 0.9,
		EstablishedAfterSec:   15,
	}
	return &Scenario{
		Name:   "Fig8b-openstack-SipDp",
		Switch: sw,
		NIC:    UDPProfile,
		// The OpenStack testbed is two laptop-class i5-6300U boxes with
		// 2 GB RAM (Table 1), far weaker than the synthetic Xeon server.
		BudgetOverride: referenceBudget() / 3,
		Victims:        []*Victim{victim},
		Phases: []AttackPhase{
			{Trace: trace, RatePps: 100, StartSec: 0, StopSec: 60},
			{Trace: trace, RatePps: 100, StartSec: 90, StopSec: 120},
		},
		DurationSec: 120,
	}, nil
}

// Fig8cScenario reproduces the Kubernetes run of Fig. 8c: a 1 Gbps virtio
// link on a weak 2-core vagrant box. The victim starts immediately and
// reaches line rate; the attacker starts sending at t1 = 30 at 1000 pps
// against the *benign* ACL (minor glitch), injects the full Fig. 6 ACL at
// t2 = 60 (SipSpDp becomes possible; the victim drops ~80 %), and raises
// the rate to 2000 pps at t4 = 120, at which point attack traffic alone
// exhausts the CPU budget: full denial of service.
func Fig8cScenario() (*Scenario, error) {
	// Before t2 the switch runs the benign Baseline ACL.
	benign := flowtable.UseCaseACL(flowtable.Baseline, flowtable.ACLParams{})
	malicious := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	// The victim's megaflow is installed first; the kernel datapath scans
	// masks in insertion order, so the long-running victim keeps a cheap
	// scan position and the damage comes from CPU exhaustion (in contrast
	// to the mask-position damage of Fig. 8a).
	sw, err := vswitch.New(vswitch.Config{Table: benign, DisableMicroflow: true,
		Order: tss.OrderInsertion})
	if err != nil {
		return nil, err
	}
	trace, err := core.CoLocated(malicious, core.CoLocatedOptions{Noise: true, Seed: 3})
	if err != nil {
		return nil, err
	}
	victim := &Victim{
		Name:        "Victim",
		Header:      victimHeader(0x0a000030, 42000, 80),
		OfferedGbps: 1.0,
	}
	// A 2-core vagrant box: a fraction of the synthetic server's budget.
	budget := referenceBudget() / 2
	return &Scenario{
		Name:           "Fig8c-kubernetes-SipSpDp",
		Switch:         sw,
		NIC:            lineLimited(UDPProfile, 1.0),
		BudgetOverride: budget,
		Victims:        []*Victim{victim},
		Phases: []AttackPhase{
			{Trace: trace, RatePps: 1000, StartSec: 30, StopSec: 120, InjectACL: nil},
			// The ACL injection at t2 = 60 is modelled as a zero-rate
			// phase carrying only the table swap.
			{Trace: trace, RatePps: 0, StartSec: 60, StopSec: 61, InjectACL: malicious},
			{Trace: trace, RatePps: 2000, StartSec: 120, StopSec: 150},
		},
		DurationSec: 150,
	}, nil
}

// lineLimited returns a copy of the profile with a different line rate
// (virtio links in the Kubernetes testbed support 1 Gbps, §5.6).
func lineLimited(p NICProfile, gbps float64) NICProfile {
	p.LineRateGbps = gbps
	return p
}

// MulticoreScenario builds the synthetic SipDp attack over a PMD-style
// multi-worker datapath: four TCP victims sharing a 10 Gbps link, a
// high-rate co-located attack during [30, 90), and one CPU budget per
// worker (adding cores adds capacity, as adding PMD threads does in OVS).
//
// The scenario exists to show what scaling out does — and does not — buy
// against TSE. The attack's slow-path CPU load shards across the cores by
// RSS, so extra cores absorb the brute-force component; the mask count is
// global state of the shared megaflow cache, so the linear scan tax on
// every victim lookup is identical at any core count. Compare workers 1,
// 4, and 8 (examples/multicore and the `multicore` experiment do) to see
// throughput recover only up to the probe-cost plateau.
func MulticoreScenario(workers int) (*Scenario, error) {
	if workers < 1 {
		return nil, fmt.Errorf("dataplane: multicore scenario needs >= 1 worker, got %d", workers)
	}
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return nil, err
	}
	trace, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 7})
	if err != nil {
		return nil, err
	}
	victims := make([]*Victim, 4)
	for i := range victims {
		victims[i] = &Victim{
			Name:        fmt.Sprintf("Victim %d", i+1),
			Header:      victimHeader(0x0a000040+uint32(i), uint16(43000+17*i), 80),
			OfferedGbps: 9.7 / 4,
		}
	}
	return &Scenario{
		Name:        fmt.Sprintf("Multicore-SipDp-%dw", workers),
		Switch:      sw,
		NIC:         TCPGroOff,
		Victims:     victims,
		Phases:      []AttackPhase{{Trace: trace, RatePps: 2000, StartSec: 30, StopSec: 90}},
		DurationSec: 120,
		Workers:     workers,
	}, nil
}

// SaturationScenario builds the slow-path saturation experiment over the
// asynchronous upcall subsystem: the full Fig. 6 SipSpDp ACL (the paper's
// worst case, ~8k attainable masks), two TCP victims, and a 1000 pps
// co-located attack — every packet of which is a flow miss, so the whole
// attack lands on the upcall path.
//
// bounded=false removes every bound: the handlers install each attack
// megaflow, the mask count runs away, and the victims collapse — the
// paper's overload regime, asynchronously reproduced. bounded=true turns
// on the defenses this subsystem exists for: bounded per-worker queues, a
// per-source admission quota, and a finite handler service rate. Queue and
// quota drops plus flow-miss deduplication then measurably cap MFC mask
// growth (the async counterpart of MFCGuard's m_th knob) while the
// round-robin drain keeps the victims' own upcalls served.
func SaturationScenario(workers int, bounded bool) (*Scenario, error) {
	if workers < 1 {
		return nil, fmt.Errorf("dataplane: saturation scenario needs >= 1 worker, got %d", workers)
	}
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		return nil, err
	}
	trace, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 11})
	if err != nil {
		return nil, err
	}
	victims := make([]*Victim, 2)
	for i := range victims {
		victims[i] = &Victim{
			Name:        fmt.Sprintf("Victim %d", i+1),
			Header:      victimHeader(0x0a000050+uint32(i), uint16(44000+13*i), 80),
			OfferedGbps: 9.7 / 2,
		}
	}
	up := &UpcallParams{RevalidateSec: 1}
	name := "Saturation-SipSpDp-unbounded"
	if bounded {
		// Tuned so every defense layer is visible in the series: the
		// per-port quota admits more than the handlers serve (backlog
		// grows and the handler budget saturates), the backlog hits the
		// queue bound (queue drops), and the quota refuses the bulk of
		// the flood.
		up.QueueCap = 128
		up.QuotaPerPort = 64
		up.HandledPerSec = 32
		// The handler budget is in the name: tuned parameters would
		// otherwise make same-named BENCH trajectory rows compare
		// different configurations across PRs (the budget was 64 through
		// BENCH_pr4).
		name = "Saturation-SipSpDp-bounded-h32"
	}
	return &Scenario{
		Name:        fmt.Sprintf("%s-%dw", name, workers),
		Switch:      sw,
		NIC:         TCPGroOff,
		Victims:     victims,
		Phases:      []AttackPhase{{Trace: trace, RatePps: 1000, StartSec: 5, StopSec: 35}},
		DurationSec: 45,
		Workers:     workers,
		Upcall:      up,
	}, nil
}

// PortFairnessMode selects how PortFairnessScenario keys and sizes the
// upcall admission quotas.
type PortFairnessMode string

const (
	// FairnessWorkerKeyed is the legacy ablation: quotas keyed on the PMD
	// worker, so the victims share the flooding port's bucket.
	FairnessWorkerKeyed PortFairnessMode = "workerkeyed"
	// FairnessPortKeyed keys a static quota on the ingress vport.
	FairnessPortKeyed PortFairnessMode = "portkeyed"
	// FairnessAdaptive is port-keyed with the revalidator feedback loop
	// shrinking the flooding port's quota — the de-flapped two-input
	// controller (EWMA-smoothed megaflow pressure + backlog residence,
	// hysteresis bands around the quota in force).
	FairnessAdaptive PortFairnessMode = "adaptive"
	// FairnessAdaptiveRaw is the controller ablation: the original raw
	// single-input map (QuotaFor applied verbatim every sweep), which
	// visibly flaps ±1 quota steps on a noisy plateau and bounces to
	// BaseQuota after churn events.
	FairnessAdaptiveRaw PortFairnessMode = "adaptiveraw"
)

// churnACL returns the SipSpDp ACL with a top-priority allow rule for an
// unused transport source port prepended. Swapping between this table and
// the plain one is semantically invisible to every flow in the scenario
// (nothing sends from port 55555) but changes the megaflow every walk
// generates — rule #0 unwildcards tp_src at the top of each walk — so the
// revalidator invalidates the whole cache at the next sweep: the OpenFlow
// policy-churn event that forces every flow, victims included, to
// re-establish through the slow path while the flood rages.
func churnACL() *flowtable.Table {
	l := bitvec.IPv4Tuple
	t := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	sp, _ := l.FieldIndex("tp_src")
	key := bitvec.NewVec(l)
	key.SetField(l, sp, 55555)
	t.MustAdd(&flowtable.Rule{Name: "#0", Priority: 50, Action: flowtable.Allow,
		Key: key, Mask: bitvec.FieldMask(l, sp)})
	return t
}

// PortFairnessScenario builds the per-port fairness experiment: one PMD
// worker shared by three vports — the attacker on vport 0 replaying a
// SipSpDp tuple-space-exploding flood, an established victim on vport 1,
// and a late victim on vport 2 that joins mid-flood. The victims' probes
// land mid-second, after half the flood, as they would in any real
// interleaving.
//
// Because the megaflow generator tiles the tuple space exactly, a warm
// cache shields even mid-flood joiners within a second or two; what keeps
// flow setup racing the flood in practice is cache *churn*. The scenario
// models it the Fig. 8c way: the tenant's ACL is updated mid-attack
// (every 5 s, alternating a semantically neutral variant), each update
// invalidating the cache at the next revalidator sweep, so every flow
// must win upcall admission again while the flood floods.
//
// The three modes isolate what each fairness layer buys. Worker-keyed
// (the pre-vport shape): all three vports share one admission bucket, and
// after every churn event the flood drains it before the victims' setup
// packets arrive — the victims are refused at admission and move nothing
// until the flood's own megaflows re-cover them (the order-dependence
// called out in ROADMAP). Port-keyed: each victim owns its bucket, so
// re-establishment is admitted the moment it is attempted. Adaptive: the
// revalidator additionally notices the flooding port's exploding megaflow
// footprint and throttles *that port's* quota toward the floor, capping
// mask growth — and with it every victim lookup's scan cost — while the
// victims keep their full budgets.
func PortFairnessScenario(mode PortFairnessMode) (*Scenario, error) {
	plain := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	churned := churnACL()
	sw, err := vswitch.New(vswitch.Config{Table: plain, DisableMicroflow: true})
	if err != nil {
		return nil, err
	}
	trace, err := core.CoLocated(plain, core.CoLocatedOptions{Noise: true, Seed: 17})
	if err != nil {
		return nil, err
	}
	victims := []*Victim{
		{
			Name:        "Victim (established)",
			Header:      victimHeader(0x0a000060, 46000, 80),
			OfferedGbps: 9.7 / 2,
			Port:        1,
		},
		{
			Name:        "Victim (mid-attack)",
			Header:      victimHeader(0x0a000061, 46017, 80),
			OfferedGbps: 9.7 / 2,
			StartSec:    15, // joins while the flood is raging
			Port:        2,
		},
	}
	phases := []AttackPhase{
		{Trace: trace, RatePps: 1000, StartSec: 5, StopSec: 35, Port: 0},
	}
	// Policy churn at 12, 17, ..., 32: zero-rate phases carrying only the
	// table swap, alternating the neutral variant and the original.
	for i, t := 0, 12; t < 35; i, t = i+1, t+5 {
		tbl := churned
		if i%2 == 1 {
			tbl = plain
		}
		phases = append(phases, AttackPhase{StartSec: t, StopSec: t + 1, InjectACL: tbl})
	}
	up := &UpcallParams{
		QueueCap:      256,
		QuotaPerPort:  64,
		HandledPerSec: 64,
		RevalidateSec: 1,
	}
	switch mode {
	case FairnessWorkerKeyed:
		up.WorkerKeyedQuota = true
	case FairnessPortKeyed:
	case FairnessAdaptive:
		// The de-flapped controller: both signals smoothed at the default
		// alpha, the default ±50% hold band, and the residence input armed
		// at 2 virtual seconds — with HandledPerSec 64 shared round-robin,
		// a port whose upcalls wait >2 s has a standing backlog no victim
		// ever builds.
		up.Adaptive = &upcall.AdaptiveQuota{
			BaseQuota: 64, MinQuota: 4, TargetFootprint: 64,
			TargetResidenceSec: 2,
			EWMAAlpha:          upcall.DefaultEWMAAlpha,
			HysteresisPct:      upcall.DefaultHysteresisPct,
		}
	case FairnessAdaptiveRaw:
		up.Adaptive = &upcall.AdaptiveQuota{BaseQuota: 64, MinQuota: 4, TargetFootprint: 64}
	default:
		return nil, fmt.Errorf("dataplane: unknown port-fairness mode %q", mode)
	}
	return &Scenario{
		Name:        fmt.Sprintf("PortFairness-SipSpDp-%s", mode),
		Switch:      sw,
		NIC:         TCPGroOff,
		Victims:     victims,
		Phases:      phases,
		DurationSec: 45,
		Workers:     1,
		Upcall:      up,
	}, nil
}
