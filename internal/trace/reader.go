package trace

import (
	"encoding/binary"
	"fmt"
	"os"

	"tse/internal/bitvec"
)

// Batch is the structure-of-arrays view one decode step fills: parallel
// tick/port/key columns, with every key sliced out of one flat word
// arena allocated at construction. Next overwrites the arena in place,
// so a Batch is reused for the whole replay — zero per-packet (and zero
// per-batch) allocation, which BenchmarkReplayDecode asserts with
// AllocsPerRun.
type Batch struct {
	// Ticks, Ports, Keys are the decoded columns, all len == the last
	// Next's return value. Keys[i] aliases the arena; it is valid until
	// the next call to Next.
	Ticks []int64
	Ports []int
	Keys  []bitvec.Vec

	arena []uint64 // flat key storage: cap × words, Keys[i] = arena[i*words:...]
	words int
	ticks []int64
	ports []int
	keys  []bitvec.Vec
}

// NewBatch builds a reusable batch holding up to n keys of the given
// word count. All storage is allocated here, once.
func NewBatch(words, n int) *Batch {
	b := &Batch{
		arena: make([]uint64, n*words),
		words: words,
		ticks: make([]int64, n),
		ports: make([]int, n),
		keys:  make([]bitvec.Vec, n),
	}
	for i := 0; i < n; i++ {
		b.keys[i] = bitvec.Vec(b.arena[i*words : (i+1)*words])
	}
	return b
}

// Cap returns the batch's capacity in records.
func (b *Batch) Cap() int { return len(b.keys) }

// Reader decodes a trace image. Open maps the file into memory (the
// records are read straight out of the mapping, no buffering, no read
// syscalls); NewReader wraps bytes already in memory. A Reader is a
// sequential cursor — use Reset to rewind for another pass.
type Reader struct {
	data   []byte // full image (mapped or caller-provided)
	recs   []byte // record region
	words  int
	count  uint64
	layout string
	next   uint64 // record cursor
	mapped bool   // munmap on Close
}

// NewReader validates the header of an in-memory trace image and
// returns a Reader over it.
func NewReader(data []byte) (*Reader, error) {
	words, count, layout, recOff, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	return &Reader{
		data:   data,
		recs:   data[recOff:],
		words:  words,
		count:  count,
		layout: layout,
	}, nil
}

// Open maps the trace file at path and returns a Reader over the
// mapping. Close unmaps it.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := mmap(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	r, err := NewReader(data)
	if err != nil {
		munmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	r.mapped = true
	return r, nil
}

// Close releases the mapping (a no-op for NewReader readers).
func (r *Reader) Close() error {
	if !r.mapped {
		return nil
	}
	r.mapped = false
	data := r.data
	r.data, r.recs = nil, nil
	return munmap(data)
}

// Words returns the per-key word count.
func (r *Reader) Words() int { return r.words }

// Count returns the total record count.
func (r *Reader) Count() uint64 { return r.count }

// LayoutString returns the layout description recorded in the header
// ("name:width,...", bitvec.Layout.String form).
func (r *Reader) LayoutString() string { return r.layout }

// Layout resolves the recorded layout against the repository's standard
// layouts, or returns an error for a foreign layout (the records still
// decode — keys are raw words — but field-level interpretation needs
// the caller to know the layout).
func (r *Reader) Layout() (*bitvec.Layout, error) {
	for _, l := range []*bitvec.Layout{
		bitvec.IPv4Tuple, bitvec.IPv4TuplePort, bitvec.IPv6Tuple,
		bitvec.HYP, bitvec.HYP2,
	} {
		if l.String() == r.layout {
			return l, nil
		}
	}
	return nil, fmt.Errorf("trace: unknown layout %q", r.layout)
}

// Reset rewinds the cursor to the first record.
func (r *Reader) Reset() { r.next = 0 }

// Remaining returns the number of records the cursor has not yet
// decoded.
func (r *Reader) Remaining() uint64 { return r.count - r.next }

// Next decodes up to b.Cap() records into b and returns the number
// decoded; 0 means end of trace. It performs no allocation: ticks,
// ports and key words are written into the batch's preallocated columns
// and flat arena.
func (r *Reader) Next(b *Batch) int {
	if b.words != r.words {
		panic(fmt.Sprintf("trace: batch has %d-word keys, trace has %d", b.words, r.words))
	}
	n := int(r.count - r.next)
	if n <= 0 {
		b.Ticks, b.Ports, b.Keys = b.ticks[:0], b.ports[:0], b.keys[:0]
		return 0
	}
	if n > b.Cap() {
		n = b.Cap()
	}
	rs := recordSize(r.words)
	off := int(r.next) * rs
	for i := 0; i < n; i++ {
		rec := r.recs[off : off+rs]
		b.ticks[i] = int64(binary.LittleEndian.Uint32(rec[0:]))
		b.ports[i] = int(binary.LittleEndian.Uint32(rec[4:]))
		key := b.arena[i*r.words : (i+1)*r.words]
		for w := 0; w < r.words; w++ {
			key[w] = binary.LittleEndian.Uint64(rec[8+8*w:])
		}
		off += rs
	}
	r.next += uint64(n)
	b.Ticks, b.Ports, b.Keys = b.ticks[:n], b.ports[:n], b.keys[:n]
	return n
}
