package trace

import (
	"reflect"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/datapath"
	"tse/internal/flowtable"
	"tse/internal/vswitch"
)

// mixOptions is the test workload: a victim mix with a co-located
// SipSpDp flood riding on vport 0 — every layer of the pool exercised
// (EMC hits, megaflow hits, slow-path installs).
func mixOptions(t *testing.T, seconds, attackPps int) SynthOptions {
	t.Helper()
	opts := SynthOptions{Seconds: seconds, Victims: 3, VictimPps: 400, Ports: 4}
	if attackPps > 0 {
		tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
		atk, err := core.CoLocated(tbl, core.CoLocatedOptions{Noise: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		opts.Attack, opts.AttackPps = atk, attackPps
	}
	return opts
}

// newReplayPool builds the pool the replay tests drive: SipSpDp ACL,
// switch-level microflow off (the EMC lives per worker), inline slow
// path, 4 vports.
func newReplayPool(t *testing.T, prefetch int) *datapath.Pool {
	t.Helper()
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := datapath.New(datapath.Config{
		Switch: sw, Workers: 1, Ports: 4, PrefetchDepth: prefetch})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// synthImage renders the workload to an in-memory trace image.
func synthImage(t *testing.T, opts SynthOptions) []byte {
	t.Helper()
	var buf Buffer
	w, err := NewWriter(&buf, bitvec.IPv4Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(w, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// synthSlices collects the same workload as parallel record slices (the
// synthetic, never-encoded side of the equivalence test).
func synthSlices(t *testing.T, opts SynthOptions) (ticks []int64, ports []int, keys []bitvec.Vec) {
	t.Helper()
	err := SynthRecords(opts, func(tick int64, port int, key bitvec.Vec) error {
		ticks = append(ticks, tick)
		ports = append(ports, port)
		keys = append(keys, key.Clone())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ticks, ports, keys
}

// TestReplayMatchesSynthetic is the replay-vs-synthetic equivalence
// test: the same flow sequence driven once through encode → mmap-style
// decode → dispatch and once straight from memory must leave two
// identical pools with bit-identical verdict counters (worker stats,
// EMC counters, per-port ledgers, probe counts — everything).
func TestReplayMatchesSynthetic(t *testing.T) {
	opts := mixOptions(t, 3, 500)

	replayPool := newReplayPool(t, 0)
	rd, err := NewReader(synthImage(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	rr := &Replayer{Pool: replayPool, Chunk: 256, Serial: true, TickSwitch: true}
	replayRes := rr.Run(rd)

	synthPool := newReplayPool(t, 0)
	ticks, ports, keys := synthSlices(t, opts)
	sr := &Replayer{Pool: synthPool, Chunk: 256, Serial: true, TickSwitch: true}
	synthRes := sr.RunRecords(ticks, ports, keys)

	if replayRes.Packets != synthRes.Packets {
		t.Fatalf("packets: replay %d, synthetic %d", replayRes.Packets, synthRes.Packets)
	}
	if !reflect.DeepEqual(replayRes.Totals, synthRes.Totals) {
		t.Fatalf("verdict counters diverge:\nreplay    %+v\nsynthetic %+v",
			replayRes.Totals, synthRes.Totals)
	}
	if replayRes.Totals.SlowPath == 0 || replayRes.Totals.EMCHits == 0 {
		t.Fatalf("workload did not exercise all layers: %+v", replayRes.Totals)
	}
	if m := replayPool.Switch().MFC().MaskCount(); m != synthPool.Switch().MFC().MaskCount() {
		t.Fatalf("mask counts diverge: replay %d, synthetic %d",
			m, synthPool.Switch().MFC().MaskCount())
	}
}

// TestReplayPrefetchEquivalent asserts the prefetch pass is purely a
// memory-warming hint: a pool with PrefetchDepth on must produce
// bit-identical counters to one with it off.
func TestReplayPrefetchEquivalent(t *testing.T) {
	opts := mixOptions(t, 2, 300)
	image := synthImage(t, opts)

	run := func(depth int) datapath.WorkerStats {
		pool := newReplayPool(t, depth)
		rd, err := NewReader(image)
		if err != nil {
			t.Fatal(err)
		}
		rr := &Replayer{Pool: pool, Serial: true, TickSwitch: true}
		return rr.Run(rd).Totals
	}
	plain, prefetched := run(0), run(8)
	if !reflect.DeepEqual(plain, prefetched) {
		t.Fatalf("prefetch changed verdicts:\noff %+v\non  %+v", plain, prefetched)
	}
}

// TestReplayDecodeAllocs asserts the decode loop is allocation-free:
// once the batch exists, Next writes into its arena and columns only.
func TestReplayDecodeAllocs(t *testing.T) {
	rd, err := NewReader(synthImage(t, mixOptions(t, 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(rd.Words(), 256)
	rd.Next(b) // touch once outside the measured region
	allocs := testing.AllocsPerRun(200, func() {
		if rd.Next(b) == 0 {
			rd.Reset()
		}
	})
	if allocs != 0 {
		t.Fatalf("decode allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestReplayBurstAllocs asserts the full replay step — decode plus
// dispatch through the pool's 32-packet bursts — is allocation-free on
// a warm pool (the EMC already primed by a first pass).
func TestReplayBurstAllocs(t *testing.T) {
	pool := newReplayPool(t, 8)
	rd, err := NewReader(synthImage(t, mixOptions(t, 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	rr := &Replayer{Pool: pool, Chunk: 256, Serial: true}
	rr.Run(rd) // warm: EMC primed, buffers grown
	b := NewBatch(rd.Words(), 256)
	rd.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		n := rd.Next(b)
		if n == 0 {
			rd.Reset()
			return
		}
		rr.Dispatch(b, 0)
	})
	if allocs != 0 {
		t.Fatalf("replay burst allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestReplayFromDisk drives the full wire-rate path the replay
// experiment uses: trace file on disk, mmap'd open, zero-copy decode,
// dispatch. The counters must match the in-memory image of the same
// workload.
func TestReplayFromDisk(t *testing.T) {
	opts := mixOptions(t, 2, 300)
	path := writeTemp(t, opts)

	diskRd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer diskRd.Close()
	diskPool := newReplayPool(t, 8)
	diskRes := (&Replayer{Pool: diskPool, Serial: true, TickSwitch: true}).Run(diskRd)

	memRd, err := NewReader(synthImage(t, opts))
	if err != nil {
		t.Fatal(err)
	}
	memPool := newReplayPool(t, 8)
	memRes := (&Replayer{Pool: memPool, Serial: true, TickSwitch: true}).Run(memRd)

	if !reflect.DeepEqual(diskRes.Totals, memRes.Totals) {
		t.Fatalf("mmap replay diverges from in-memory replay:\ndisk %+v\nmem  %+v",
			diskRes.Totals, memRes.Totals)
	}
}

// TestReplayerConcurrentMode smoke-tests the goroutine dispatch path
// with multiple workers and ports.
func TestReplayerConcurrentMode(t *testing.T) {
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := datapath.New(datapath.Config{Switch: sw, Workers: 2, Ports: 4})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(synthImage(t, mixOptions(t, 2, 200)))
	if err != nil {
		t.Fatal(err)
	}
	rr := &Replayer{Pool: pool, TickSwitch: true}
	res := rr.Run(rd)
	if res.Packets != rd.Count() {
		t.Fatalf("replayed %d of %d packets", res.Packets, rd.Count())
	}
	if res.Totals.Packets != res.Packets {
		t.Fatalf("pool saw %d packets, replayer sent %d", res.Totals.Packets, res.Packets)
	}
}
