//go:build !linux

package trace

import (
	"io"
	"os"
)

// mmap falls back to reading the file into memory on platforms where
// the repository does not wire the mapping syscall. The Reader's
// contract (decode from a byte image) is unchanged; only the zero-copy
// property of Open is.
func mmap(f *os.File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return data, nil
}

func munmap([]byte) error { return nil }
