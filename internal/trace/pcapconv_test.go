package trace

import (
	"bytes"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/packet"
	"tse/internal/pcap"
)

// TestFromPcapRoundTrip crafts real Ethernet/IPv4 frames from flow
// keys, writes them through the pcap layer, converts the capture to a
// trace, and asserts every flow key survives both hops intact (with a
// garbage frame in the middle counted as skipped, not fatal).
func TestFromPcapRoundTrip(t *testing.T) {
	l := bitvec.IPv4Tuple
	keys := []bitvec.Vec{VictimHeader(0), VictimHeader(1), VictimHeader(2)}

	var pcapBuf bytes.Buffer
	pw := pcap.NewWriter(&pcapBuf)
	for i, k := range keys {
		frame, err := packet.Craft(l, k, packet.CraftOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rec := pcap.Record{TsSec: uint32(10 + i), Data: frame, OrigLen: uint32(len(frame))}
		if err := pw.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
		if i == 1 { // a non-IPv4 frame the converter must skip
			junk := pcap.Record{TsSec: uint32(10 + i), Data: []byte{0xde, 0xad}, OrigLen: 2}
			if err := pw.WriteRecord(junk); err != nil {
				t.Fatal(err)
			}
		}
	}

	pr, err := pcap.NewReader(bytes.NewReader(pcapBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf Buffer
	w, err := NewWriter(&traceBuf, l)
	if err != nil {
		t.Fatal(err)
	}
	converted, skipped, err := FromPcap(pr, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if converted != len(keys) || skipped != 1 {
		t.Fatalf("converted %d skipped %d, want %d and 1", converted, skipped, len(keys))
	}

	r, err := NewReader(traceBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(r.Words(), 8)
	n := r.Next(b)
	if n != len(keys) {
		t.Fatalf("decoded %d records, want %d", n, len(keys))
	}
	for i := 0; i < n; i++ {
		if !b.Keys[i].Equal(keys[i]) {
			t.Fatalf("record %d: key %v, want %v", i, b.Keys[i], keys[i])
		}
		if b.Ticks[i] != int64(10+i) || b.Ports[i] != 3 {
			t.Fatalf("record %d: tick %d port %d, want %d and 3", i, b.Ticks[i], b.Ports[i], 10+i)
		}
	}
}

// TestFromPcapRejectsWrongLayout asserts the converter refuses a writer
// that is not IPv4Tuple-shaped.
func TestFromPcapRejectsWrongLayout(t *testing.T) {
	var pcapBuf bytes.Buffer
	pw := pcap.NewWriter(&pcapBuf)
	if err := pw.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	pr, err := pcap.NewReader(bytes.NewReader(pcapBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf Buffer
	w, err := NewWriter(&traceBuf, bitvec.IPv6Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FromPcap(pr, w, 0); err == nil {
		t.Fatal("IPv6Tuple writer accepted")
	}
}
