// Package trace implements the repository's compact binary flow-trace
// format and the wire-rate replay engine over it — the ingest layer the
// ROADMAP's "wire-rate ingest" item asked for. Where the experiment
// runners synthesize bitvec.Vec headers one at a time (modelling the
// classifier but never the receive path), a trace file replays through
// the PMD pool the way a DPDK rx burst would: mmap'd records decoded
// straight into reusable structure-of-arrays batches (one flat word
// arena, zero per-packet allocation) and dispatched to
// datapath.Pool.ProcessBatchPorts in 32-packet bursts, with a software
// prefetch pass over the EMC fingerprint slots and the head of the tss
// probe mirror ahead of the lookup loop.
//
// File layout (all little-endian):
//
//	offset  size  field
//	0       8     magic "TSETRC01"
//	8       4     words    — uint64 words per flow key (layout.Words())
//	12      4     layout   — byte length of the layout string
//	16      8     count    — number of records
//	24      L     layout string ("name:width,..."), zero-padded to 8 B
//	...           records
//
// Record layout (fixed width, 8 + 8*words bytes):
//
//	offset  size      field
//	0       4         tick     — virtual second the packet arrives in
//	4       4         in_port  — ingress vport
//	8       8*words   flow key — the bitvec.Vec words, in order
//
// Keys are stored as raw layout words, so decode is a straight word
// copy: no field extraction, no parsing, no byte swapping on
// little-endian hosts beyond the bounds-checked loads. At the IPv4Tuple
// layout (2 words) a record is 24 bytes — one minute of 10 Mpps traffic
// is ~14 GB, which is why the Reader maps the file instead of reading
// it.
package trace

import (
	"encoding/binary"
	"fmt"

	"tse/internal/bitvec"
)

// magic identifies a trace file; the trailing "01" is the format
// version.
const magic = "TSETRC01"

const (
	headerFixedLen = 24
	countOffset    = 16
	// maxWords bounds the per-record key width a header may declare;
	// far above any layout in the repository (IPv6Tuple is 5 words) but
	// small enough that a corrupt header cannot demand absurd batches.
	maxWords = 64
	// maxLayoutLen bounds the layout-string length a header may declare,
	// so a corrupt header cannot point the record region past the file.
	maxLayoutLen = 4096
)

// recordSize returns the fixed record width for a key of the given word
// count.
func recordSize(words int) int { return 8 + 8*words }

// headerLen returns the full header length including the padded layout
// string.
func headerLen(layoutLen int) int {
	return headerFixedLen + (layoutLen+7)/8*8
}

// encodeHeader renders the file header for a layout with the given
// record count.
func encodeHeader(l *bitvec.Layout, count uint64) []byte {
	ls := l.String()
	hdr := make([]byte, headerLen(len(ls)))
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(l.Words()))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(ls)))
	binary.LittleEndian.PutUint64(hdr[countOffset:], count)
	copy(hdr[headerFixedLen:], ls)
	return hdr
}

// parseHeader validates data's header and returns the key word count,
// record count, layout string, and the offset of the first record.
func parseHeader(data []byte) (words int, count uint64, layout string, recOff int, err error) {
	if len(data) < headerFixedLen {
		return 0, 0, "", 0, fmt.Errorf("trace: short header (%d bytes)", len(data))
	}
	if string(data[:8]) != magic {
		return 0, 0, "", 0, fmt.Errorf("trace: bad magic %q", data[:8])
	}
	words = int(binary.LittleEndian.Uint32(data[8:]))
	if words < 1 || words > maxWords {
		return 0, 0, "", 0, fmt.Errorf("trace: implausible key width %d words", words)
	}
	layoutLen := int(binary.LittleEndian.Uint32(data[12:]))
	if layoutLen < 1 || layoutLen > maxLayoutLen {
		return 0, 0, "", 0, fmt.Errorf("trace: implausible layout length %d", layoutLen)
	}
	count = binary.LittleEndian.Uint64(data[countOffset:])
	recOff = headerLen(layoutLen)
	if len(data) < recOff {
		return 0, 0, "", 0, fmt.Errorf("trace: truncated layout string")
	}
	layout = string(data[headerFixedLen : headerFixedLen+layoutLen])
	avail := uint64(len(data)-recOff) / uint64(recordSize(words))
	if count > avail {
		return 0, 0, "", 0, fmt.Errorf("trace: header claims %d records, file holds %d", count, avail)
	}
	return words, count, layout, recOff, nil
}
