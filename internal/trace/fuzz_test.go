package trace

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"tse/internal/bitvec"
)

// TestReaderNeverPanicsOnGarbage feeds random byte images to the
// reader (the trace-format mirror of internal/pcap's fuzz test): every
// outcome must be a clean error or well-formed records, never a panic
// or an out-of-bounds decode. Half the trials start from a valid magic
// so header and record parsing are actually reached.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(400)
		data := make([]byte, n)
		rng.Read(data)
		if n >= headerFixedLen && trial%2 == 0 {
			copy(data, magic)
			// Small plausible-ish words/layout lengths half of those
			// trials, fully random the other half.
			if trial%4 == 0 {
				binary.LittleEndian.PutUint32(data[8:], uint32(1+rng.Intn(8)))
				binary.LittleEndian.PutUint32(data[12:], uint32(1+rng.Intn(64)))
			}
		}
		r, err := NewReader(data)
		if err != nil {
			continue
		}
		b := NewBatch(r.Words(), 16)
		for i := 0; i < 10; i++ {
			if r.Next(b) == 0 {
				break
			}
		}
	}
}

// TestReaderRejectsCorruptHeaders spot-checks each header validation:
// truncation, bad magic, implausible key width, implausible layout
// length, and a record count past the end of the file.
func TestReaderRejectsCorruptHeaders(t *testing.T) {
	var buf Buffer
	w, err := NewWriter(&buf, bitvec.IPv4Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(w, GoldenOptions()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := NewReader(good); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	corrupt := func(name string, mutate func(d []byte) []byte) {
		d := append([]byte(nil), good...)
		d = mutate(d)
		if _, err := NewReader(d); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("truncated header", func(d []byte) []byte { return d[:headerFixedLen-1] })
	corrupt("bad magic", func(d []byte) []byte { d[0] ^= 0xff; return d })
	corrupt("zero key width", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[8:], 0)
		return d
	})
	corrupt("absurd key width", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[8:], 1<<20)
		return d
	})
	corrupt("absurd layout length", func(d []byte) []byte {
		binary.LittleEndian.PutUint32(d[12:], 1<<20)
		return d
	})
	corrupt("count past EOF", func(d []byte) []byte {
		binary.LittleEndian.PutUint64(d[countOffset:], 1<<40)
		return d
	})
	corrupt("truncated record region", func(d []byte) []byte { return d[:len(d)-8] })
}
