package trace

import (
	"fmt"

	"tse/internal/bitvec"
	"tse/internal/core"
)

// SynthOptions describes a synthetic workload to render as a trace: a
// victim mix (N long-lived benign flows at a fixed per-flow rate, the
// traffic every dataplane scenario prices) optionally interleaved with
// an adversarial flood cycled from a core.Trace. tsegen's -emit-trace,
// the replay experiment, and the dataplane replay presets all share
// this one definition, so "the victim-mix trace" means the same packet
// sequence everywhere.
type SynthOptions struct {
	// Layout is the flow-key layout; nil selects bitvec.IPv4Tuple.
	Layout *bitvec.Layout
	// Seconds is the trace duration in virtual seconds (ticks).
	Seconds int
	// Victims is the number of distinct benign flows; VictimPps is each
	// flow's per-second packet rate. Victim i's packets arrive on vport
	// 1 + i%(Ports-1) (vport 0 is the attack port), or vport 0 when
	// Ports == 1.
	Victims   int
	VictimPps int
	// Ports is the ingress vport count the ports column is generated
	// over; <= 0 selects 4 (one attack port + three victim ports).
	Ports int
	// AttackPps is the flood's per-second packet rate; 0 disables the
	// flood. Attack headers cycle through Attack.Headers in order and
	// arrive on vport 0.
	AttackPps int
	// Attack is the adversarial sequence to cycle (e.g. core.CoLocated
	// over a use-case ACL). Required when AttackPps > 0.
	Attack *core.Trace
}

// VictimHeader builds benign flow i's classifier key: a TCP connection
// from a distinct source to the victim service at 192.168.0.2:80 — the
// same shape the dataplane scenarios use, so replay traffic matches
// rule #1 of every use-case ACL.
func VictimHeader(i int) bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		f, _ := l.FieldIndex(name)
		h.SetField(l, f, v)
	}
	set("ip_src", uint64(0x0a000100+uint32(i)))
	set("ip_dst", 0xc0a80002)
	set("ip_proto", 6)
	set("tp_src", uint64(40000+i))
	set("tp_dst", 80)
	return h
}

// SynthRecords generates the workload's packet sequence in arrival
// order, calling emit for every record. Within a tick the victim and
// attack streams are merged by ideal arrival time (each stream evenly
// spaced over the second), so the interleave is deterministic and
// rate-faithful. Victim packets round-robin across the victim flows.
func SynthRecords(opts SynthOptions, emit func(tick int64, port int, key bitvec.Vec) error) error {
	l := opts.Layout
	if l == nil {
		l = bitvec.IPv4Tuple
	}
	if opts.Ports <= 0 {
		opts.Ports = 4
	}
	if opts.Seconds <= 0 {
		return fmt.Errorf("trace: synth needs Seconds > 0")
	}
	aPer := opts.AttackPps
	if aPer > 0 && (opts.Attack == nil || opts.Attack.Len() == 0) {
		return fmt.Errorf("trace: AttackPps set but no attack trace")
	}
	if aPer > 0 && opts.Attack.Layout != l {
		return fmt.Errorf("trace: attack trace layout %s != %s", opts.Attack.Layout, l)
	}
	vPer := opts.Victims * opts.VictimPps
	if aPer == 0 && vPer == 0 {
		return fmt.Errorf("trace: empty workload")
	}
	victims := make([]bitvec.Vec, opts.Victims)
	vports := make([]int, opts.Victims)
	for i := range victims {
		victims[i] = VictimHeader(i)
		if opts.Ports > 1 {
			vports[i] = 1 + i%(opts.Ports-1)
		}
	}
	attackIdx := 0
	for t := 0; t < opts.Seconds; t++ {
		na, nv := 0, 0 // emitted this second, per stream
		for na < aPer || nv < vPer {
			// Emit whichever stream's next packet has the earlier ideal
			// arrival time (na+½)/aPer vs (nv+½)/vPer, compared
			// cross-multiplied in integers.
			emitAttack := nv >= vPer ||
				(na < aPer && (2*na+1)*vPer <= (2*nv+1)*aPer)
			if emitAttack {
				h := opts.Attack.Headers[attackIdx]
				attackIdx++
				if attackIdx == opts.Attack.Len() {
					attackIdx = 0
				}
				if err := emit(int64(t), 0, h); err != nil {
					return err
				}
				na++
			} else {
				i := nv % opts.Victims
				if err := emit(int64(t), vports[i], victims[i]); err != nil {
					return err
				}
				nv++
			}
		}
	}
	return nil
}

// Synthesize renders the workload through w (SynthRecords into
// w.WriteRecord) and closes the writer, patching the record count.
func Synthesize(w *Writer, opts SynthOptions) error {
	if err := SynthRecords(opts, w.WriteRecord); err != nil {
		return err
	}
	return w.Close()
}

// GoldenOptions is the tiny fixed workload behind
// testdata/golden_victim_mix.trace: two victims at 64 pps for one
// second, no attack. The golden test regenerates it and asserts the
// bytes are identical to the committed file, pinning the format.
func GoldenOptions() SynthOptions {
	return SynthOptions{Seconds: 1, Victims: 2, VictimPps: 64, Ports: 4}
}
