package trace

import (
	"fmt"
	"io"

	"tse/internal/bitvec"
	"tse/internal/packet"
	"tse/internal/pcap"
)

// FromPcap converts a pcap stream into trace records: each frame is
// parsed, its IPv4 5-tuple flow key extracted, and a record written
// with tick = the capture timestamp's whole second and in_port = port.
// Frames that do not parse to an IPv4 flow key (ARP, IPv6, truncated
// frames, transport-less protocols) are skipped and counted. The writer
// must use the bitvec.IPv4Tuple layout. Returns (converted, skipped).
func FromPcap(pr *pcap.Reader, w *Writer, port int) (int, int, error) {
	if w.words != bitvec.IPv4Tuple.Words() {
		return 0, 0, fmt.Errorf("trace: pcap conversion needs an IPv4Tuple writer")
	}
	converted, skipped := 0, 0
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return converted, skipped, nil
		}
		if err != nil {
			return converted, skipped, err
		}
		p, err := packet.Parse(rec.Data, packet.ParseOptions{})
		if err != nil {
			skipped++
			continue
		}
		key, err := p.FlowKey4()
		if err != nil {
			skipped++
			continue
		}
		if err := w.WriteRecord(int64(rec.TsSec), port, key); err != nil {
			return converted, skipped, err
		}
		converted++
	}
}
