package trace

import (
	"time"

	"tse/internal/bitvec"
	"tse/internal/datapath"
	"tse/internal/vswitch"
)

// DefaultChunk is the number of records decoded per dispatch. The pool
// still bursts at its own BatchSize (32, NETDEV_MAX_BURST) inside each
// dispatch; the larger decode chunk amortises shard setup and — in
// concurrent mode — goroutine handoff across many bursts, the way a
// PMD's rx ring amortises doorbell costs over many descriptors.
const DefaultChunk = 1024

// Replayer drives a trace through a datapath pool at wall-clock rate:
// decode a chunk into the reusable SoA batch, dispatch it to
// ProcessBatchPorts (32-packet bursts, EMC prepass, prefetch pass when
// the pool enables it), repeat. The measured quantity is achieved
// packets per wall second — ingest plus classification, the number the
// experiment runners could previously only model.
type Replayer struct {
	// Pool is the worker pool to drive. Its Ports must cover the
	// trace's in_port values.
	Pool *datapath.Pool
	// Chunk is the records decoded per dispatch; <= 0 selects
	// DefaultChunk.
	Chunk int
	// Serial dispatches through ProcessBatchSerialPorts: deterministic
	// order, no goroutine handoff. The right mode for single-worker
	// pools (a goroutine per dispatch buys nothing on one PMD) and for
	// the replay-vs-synthetic equivalence tests.
	Serial bool
	// TickSwitch runs the switch's idle-expiry sweep (Switch.Tick) at
	// every trace tick transition, as the virtual-time scenarios do.
	TickSwitch bool

	out []vswitch.Verdict // reusable verdict buffer
}

// Result summarises one replay run.
type Result struct {
	// Packets is the number of records replayed.
	Packets uint64
	// WallNs is the host wall-clock time of the run, decode included.
	WallNs int64
	// Mpps is the achieved rate: Packets / WallNs, in millions of
	// packets per wall second.
	Mpps float64
	// Totals is the pool's cumulative per-worker counter sum after the
	// run (EMC and per-port splits included).
	Totals datapath.WorkerStats
}

// Run replays rd from its current cursor to the end.
func (r *Replayer) Run(rd *Reader) Result {
	chunk := r.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	b := NewBatch(rd.Words(), chunk)
	var (
		packets uint64
		last    int64 = -1
	)
	start := time.Now()
	for {
		n := rd.Next(b)
		if n == 0 {
			break
		}
		packets += uint64(n)
		last = r.Dispatch(b, last)
	}
	wall := time.Since(start).Nanoseconds()
	res := Result{Packets: packets, WallNs: wall, Totals: r.Pool.Totals()}
	if wall > 0 {
		res.Mpps = float64(packets) * 1e3 / float64(wall)
	}
	return res
}

// RunRecords replays an in-memory record sequence through the same
// chunking and dispatch logic as Run — the synthetic side of the
// replay-vs-synthetic equivalence test: identical flow sequence,
// identical pool, no encode/decode in between.
func (r *Replayer) RunRecords(ticks []int64, ports []int, keys []bitvec.Vec) Result {
	chunk := r.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	var b Batch
	var (
		packets uint64
		last    int64 = -1
	)
	start := time.Now()
	for off := 0; off < len(keys); off += chunk {
		end := off + chunk
		if end > len(keys) {
			end = len(keys)
		}
		b.Ticks, b.Ports, b.Keys = ticks[off:end], ports[off:end], keys[off:end]
		packets += uint64(end - off)
		last = r.Dispatch(&b, last)
	}
	wall := time.Since(start).Nanoseconds()
	res := Result{Packets: packets, WallNs: wall, Totals: r.Pool.Totals()}
	if wall > 0 {
		res.Mpps = float64(packets) * 1e3 / float64(wall)
	}
	return res
}

// Dispatch feeds one decoded batch to the pool, splitting it at tick
// boundaries so every ProcessBatchPorts call runs at a single virtual
// time (and the idle sweep fires between ticks when enabled). Returns
// the last tick seen (pass it back on the next call; -1 to start).
// Run/RunRecords wrap it; callers that manage their own decode loop —
// the 0-alloc benchmarks do — use it directly.
func (r *Replayer) Dispatch(b *Batch, last int64) int64 {
	i := 0
	for i < len(b.Ticks) {
		tick := b.Ticks[i]
		j := i + 1
		for j < len(b.Ticks) && b.Ticks[j] == tick {
			j++
		}
		if r.TickSwitch && tick != last && last >= 0 {
			r.Pool.Switch().Tick(tick)
		}
		last = tick
		if cap(r.out) < j-i {
			r.out = make([]vswitch.Verdict, j-i)
		}
		if r.Serial {
			r.Pool.ProcessBatchSerialPorts(b.Ports[i:j], b.Keys[i:j], tick, r.out[:j-i])
		} else {
			r.Pool.ProcessBatchPorts(b.Ports[i:j], b.Keys[i:j], tick, r.out[:j-i])
		}
		i = j
	}
	return last
}
