//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmap maps size bytes of f read-only. A zero-length file maps to an
// empty (unmappable) slice, since mmap(2) rejects length 0.
func mmap(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
