package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tse/internal/bitvec"
)

// Writer emits a trace file. It streams records through a buffered
// writer (tsegen emits multi-GB traces) and back-patches the header's
// record count on Close, so the caller never needs to know the count up
// front.
type Writer struct {
	ws      io.WriteSeeker
	bw      *bufio.Writer
	words   int
	count   uint64
	scratch []byte
	closed  bool
}

// NewWriter writes the header for layout l and returns a Writer whose
// WriteRecord accepts keys of that layout.
func NewWriter(ws io.WriteSeeker, l *bitvec.Layout) (*Writer, error) {
	w := &Writer{
		ws:      ws,
		bw:      bufio.NewWriterSize(ws, 1<<16),
		words:   l.Words(),
		scratch: make([]byte, recordSize(l.Words())),
	}
	if _, err := w.bw.Write(encodeHeader(l, 0)); err != nil {
		return nil, err
	}
	return w, nil
}

// WriteRecord appends one packet: its arrival tick (virtual second), its
// ingress vport, and its flow key (which must match the layout's word
// count). The key is copied; the caller keeps ownership.
func (w *Writer) WriteRecord(tick int64, port int, key bitvec.Vec) error {
	if len(key) != w.words {
		return fmt.Errorf("trace: key has %d words, layout has %d", len(key), w.words)
	}
	if tick < 0 || tick > 0xffffffff {
		return fmt.Errorf("trace: tick %d out of uint32 range", tick)
	}
	if port < 0 || port > 0xffffffff {
		return fmt.Errorf("trace: port %d out of uint32 range", port)
	}
	binary.LittleEndian.PutUint32(w.scratch[0:], uint32(tick))
	binary.LittleEndian.PutUint32(w.scratch[4:], uint32(port))
	for i, word := range key {
		binary.LittleEndian.PutUint64(w.scratch[8+8*i:], word)
	}
	if _, err := w.bw.Write(w.scratch); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes buffered records and back-patches the header's record
// count. It does not close the underlying file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if _, err := w.ws.Seek(countOffset, io.SeekStart); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w.count)
	if _, err := w.ws.Write(buf[:]); err != nil {
		return err
	}
	_, err := w.ws.Seek(0, io.SeekEnd)
	return err
}

// Buffer is an in-memory io.WriteSeeker, so tests and experiments can
// build traces without touching the filesystem (NewReader replays the
// bytes directly).
type Buffer struct {
	b   []byte
	off int64
}

// Write implements io.Writer, growing the buffer as needed.
func (b *Buffer) Write(p []byte) (int, error) {
	end := b.off + int64(len(p))
	if end > int64(len(b.b)) {
		grown := make([]byte, end)
		copy(grown, b.b)
		b.b = grown
	}
	copy(b.b[b.off:end], p)
	b.off = end
	return len(p), nil
}

// Seek implements io.Seeker.
func (b *Buffer) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
	case io.SeekCurrent:
		offset += b.off
	case io.SeekEnd:
		offset += int64(len(b.b))
	default:
		return 0, fmt.Errorf("trace: bad seek whence %d", whence)
	}
	if offset < 0 {
		return 0, fmt.Errorf("trace: negative seek offset")
	}
	b.off = offset
	return offset, nil
}

// Bytes returns the written trace image.
func (b *Buffer) Bytes() []byte { return b.b }
