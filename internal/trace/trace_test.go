package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tse/internal/bitvec"
)

// writeTemp renders a trace file on disk and returns its path.
func writeTemp(t *testing.T, opts SynthOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := NewWriter(f, bitvec.IPv4Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(w, opts); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRoundTrip is the encode→mmap-decode property test: random record
// sequences written through the Writer and decoded through an mmap'd
// Reader must reproduce the source exactly — every tick, port, and key
// word.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := bitvec.IPv4Tuple
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3000)
		ticks := make([]int64, n)
		ports := make([]int, n)
		keys := make([]bitvec.Vec, n)
		for i := range keys {
			ticks[i] = int64(rng.Intn(100))
			ports[i] = rng.Intn(16)
			// Keys are stored and compared as raw words, so even bits
			// above the layout width must round-trip.
			k := bitvec.NewVec(l)
			for w := range k {
				k[w] = rng.Uint64()
			}
			keys[i] = k
		}
		path := filepath.Join(t.TempDir(), "rt.trace")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWriter(f, l)
		if err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if err := w.WriteRecord(ticks[i], ports[i], keys[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()

		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Count(); got != uint64(n) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, n)
		}
		if r.LayoutString() != l.String() {
			t.Fatalf("layout = %q, want %q", r.LayoutString(), l.String())
		}
		if rl, err := r.Layout(); err != nil || rl != l {
			t.Fatalf("Layout() = %v, %v", rl, err)
		}
		b := NewBatch(r.Words(), 257) // deliberately unaligned with n
		seen := 0
		for {
			m := r.Next(b)
			if m == 0 {
				break
			}
			for i := 0; i < m; i++ {
				j := seen + i
				if b.Ticks[i] != ticks[j] || b.Ports[i] != ports[j] || !b.Keys[i].Equal(keys[j]) {
					t.Fatalf("trial %d record %d: got (%d,%d,%v), want (%d,%d,%v)",
						trial, j, b.Ticks[i], b.Ports[i], b.Keys[i], ticks[j], ports[j], keys[j])
				}
			}
			seen += m
		}
		if seen != n {
			t.Fatalf("trial %d: decoded %d records, want %d", trial, seen, n)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenTrace pins the on-disk format: regenerating the golden
// victim-mix workload must byte-identically reproduce the committed
// file, and the committed file must decode.
func TestGoldenTrace(t *testing.T) {
	var buf Buffer
	w, err := NewWriter(&buf, bitvec.IPv4Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(w, GoldenOptions()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_victim_mix.trace")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("regenerated golden trace differs from committed file (%d vs %d bytes)",
			len(buf.Bytes()), len(want))
	}
	r, err := Open("testdata/golden_victim_mix.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 128 {
		t.Fatalf("golden trace has %d records, want 128", r.Count())
	}
	b := NewBatch(r.Words(), 32)
	total := 0
	for {
		n := r.Next(b)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if b.Ticks[i] != 0 {
				t.Fatalf("golden record has tick %d, want 0", b.Ticks[i])
			}
			if b.Ports[i] < 1 || b.Ports[i] > 2 {
				t.Fatalf("golden record on port %d, want 1 or 2", b.Ports[i])
			}
		}
		total += n
	}
	if total != 128 {
		t.Fatalf("decoded %d golden records, want 128", total)
	}
}

// TestSynthesizeDeterministic asserts the shared generator is a pure
// function of its options — tsegen, the experiments, and the presets
// rely on "the same options" meaning "the same packets".
func TestSynthesizeDeterministic(t *testing.T) {
	render := func() []byte {
		var buf Buffer
		w, err := NewWriter(&buf, bitvec.IPv4Tuple)
		if err != nil {
			t.Fatal(err)
		}
		if err := Synthesize(w, SynthOptions{Seconds: 2, Victims: 3, VictimPps: 100, Ports: 4}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("two renders of the same SynthOptions differ")
	}
}

// TestWriterRejectsBadRecords covers the writer's validation.
func TestWriterRejectsBadRecords(t *testing.T) {
	var buf Buffer
	w, err := NewWriter(&buf, bitvec.IPv4Tuple)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(0, 0, make(bitvec.Vec, 3)); err == nil {
		t.Error("wrong-width key accepted")
	}
	if err := w.WriteRecord(-1, 0, bitvec.NewVec(bitvec.IPv4Tuple)); err == nil {
		t.Error("negative tick accepted")
	}
	if err := w.WriteRecord(0, -1, bitvec.NewVec(bitvec.IPv4Tuple)); err == nil {
		t.Error("negative port accepted")
	}
}
