package tse

import (
	"bytes"
	"testing"

	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/flowtable"
	"tse/internal/mitigation"
	"tse/internal/packet"
	"tse/internal/pcap"
	"tse/internal/vswitch"
)

// TestEndToEndAttackAndMitigation walks the complete pipeline exactly as
// the CLI tools do: generate the co-located adversarial trace for the
// SipDp ACL, craft wire frames, write and re-read a pcap, parse the frames
// back into classifier keys, replay them against the simulated switch,
// observe the tuple-space explosion and victim damage, run MFCGuard, and
// verify recovery plus the never-respawn quirk.
func TestEndToEndAttackAndMitigation(t *testing.T) {
	l := bitvec.IPv4Tuple
	acl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})

	// 1. Attack trace (tsegen).
	tr, err := core.CoLocated(acl, core.CoLocatedOptions{Noise: true, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	proto, _ := l.FieldIndex("ip_proto")
	dip, _ := l.FieldIndex("ip_dst")
	for _, h := range tr.Headers {
		h.SetField(l, proto, packet.ProtoUDP)
		h.SetField(l, dip, 0xc0a80003)
	}

	// 2. Wire + pcap round trip.
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf)
	for i, h := range tr.Headers {
		frame, err := packet.Craft(l, h, packet.CraftOptions{Payload: []byte("TSE"), TTL: byte(32 + i%32)})
		if err != nil {
			t.Fatalf("craft %d: %v", i, err)
		}
		if err := w.WriteRecord(pcap.Record{TsSec: uint32(i / 100), Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != tr.Len() {
		t.Fatalf("pcap holds %d records, want %d", len(recs), tr.Len())
	}

	// 3. Replay against the switch (tseattack), with a primed victim.
	sw, err := vswitch.New(vswitch.Config{Table: acl, DisableMicroflow: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := bitvec.NewVec(l)
	dp, _ := l.FieldIndex("tp_dst")
	victim.SetField(l, dp, 80)
	victim.SetField(l, 0, 0x08080808)
	sw.Process(victim, 0)
	_, probesBaseline, _ := sw.MFC().Lookup(victim, 0)

	for _, rec := range recs {
		p, err := packet.Parse(rec.Data, packet.ParseOptions{VerifyChecksums: true})
		if err != nil {
			t.Fatal(err)
		}
		key, err := p.FlowKey4()
		if err != nil {
			t.Fatal(err)
		}
		sw.Process(key, int64(rec.TsSec))
	}
	masksAttacked := sw.MFC().MaskCount()
	_, probesAttacked, _ := sw.MFC().Lookup(victim, 6)
	if masksAttacked < 500 {
		t.Fatalf("attack spawned only %d masks end-to-end", masksAttacked)
	}
	if probesAttacked < probesBaseline+100 {
		t.Fatalf("victim probes %d -> %d; explosion not visible end-to-end",
			probesBaseline, probesAttacked)
	}

	// 4. Mitigation (mfcguard).
	g, err := mitigation.New(mitigation.Config{Switch: sw, MaskThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if deleted := g.Tick(20, 15); deleted < 500 {
		t.Fatalf("guard deleted only %d entries", deleted)
	}
	_, probesClean, ok := sw.MFC().Lookup(victim, 21)
	if !ok {
		t.Fatal("victim entry deleted by guard (requirement (i) violated)")
	}
	if probesClean > 20 {
		t.Fatalf("victim probes after guard = %d, want near-baseline", probesClean)
	}

	// 5. Re-attack: the quirk keeps the masks from coming back.
	for _, h := range tr.Headers {
		sw.Process(h, 30)
	}
	if got := sw.MFC().MaskCount(); got > 40 {
		t.Fatalf("re-attack respawned %d masks; quirk suppression failed", got)
	}
	if c := sw.Counters(); c.Suppressed == 0 {
		t.Fatal("no suppressed installs after re-attack")
	}
}

// TestEndToEndSemanticSoundness replays mixed benign+attack traffic and
// verifies that every single verdict matches the authoritative flow table
// — the cache hierarchy never changes classification semantics, no matter
// what the attack does to it.
func TestEndToEndSemanticSoundness(t *testing.T) {
	acl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	ref := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: acl}) // microflow ON
	if err != nil {
		t.Fatal(err)
	}
	atk, err := core.CoLocated(acl, core.CoLocatedOptions{Noise: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	benign, err := core.General(bitvec.IPv4Tuple, nil, 3000, core.GeneralOptions{Seed: 4, Noise: true})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave attack and benign traffic.
	n := atk.Len()
	if benign.Len() < n {
		n = benign.Len()
	}
	for i := 0; i < n; i++ {
		for _, h := range []bitvec.Vec{atk.Headers[i], benign.Headers[i]} {
			got := sw.Process(h, int64(i/100))
			want := ref.Lookup(h)
			if got.Action != want.Action {
				t.Fatalf("packet %d: verdict %v, flow table says %v (path %v)",
					i, got.Action, want.Action, got.Path)
			}
		}
	}
	// And the cached state is internally disjoint (Inv(2)) — sample-check
	// via the classifier's own insert paths having never panicked, plus
	// an explicit pairwise check over a sample of entries.
	entries := sw.MFC().Entries()
	step := len(entries)/50 + 1
	for i := 0; i < len(entries); i += step {
		for j := i + step; j < len(entries); j += step {
			a, b := entries[i], entries[j]
			if bitvec.Overlap(a.Key, a.Mask, b.Key, b.Mask) {
				t.Fatalf("cached entries overlap: %s vs %s",
					a.Format(bitvec.IPv4Tuple), b.Format(bitvec.IPv4Tuple))
			}
		}
	}
	if sw.MFC().MaskCount() < 1000 {
		t.Errorf("attack did not develop: %d masks", sw.MFC().MaskCount())
	}
	st := sw.MFC().Stats()
	if st.Lookups == 0 || st.Inserted == 0 {
		t.Error("classifier stats not recorded")
	}
}
