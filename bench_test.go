// Package tse's top-level benchmark suite: one benchmark per evaluation
// table/figure of the paper plus ablations for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem .
//
// The wall-clock numbers here are the *measured* ground truth behind the
// dataplane cost model: BenchmarkFig9aLookupVsMasks demonstrates the
// linear-in-masks lookup cost (Observation 1) on the real classifier, and
// BenchmarkAltClassifiers shows the recommended alternatives do not share
// it.
package tse

import (
	"bytes"
	"fmt"
	"testing"

	"tse/internal/alt"
	"tse/internal/analysis"
	"tse/internal/bitvec"
	"tse/internal/core"
	"tse/internal/dataplane"
	"tse/internal/flowtable"
	"tse/internal/microflow"
	"tse/internal/mitigation"
	"tse/internal/packet"
	"tse/internal/pcap"
	"tse/internal/tss"
	"tse/internal/vswitch"
)

// victimKey builds the benign web flow's classifier key.
func victimKey() bitvec.Vec {
	l := bitvec.IPv4Tuple
	h := bitvec.NewVec(l)
	set := func(name string, v uint64) {
		i, _ := l.FieldIndex(name)
		h.SetField(l, i, v)
	}
	set("ip_src", 0x08080808)
	set("ip_dst", 0xc0a80002)
	set("ip_proto", 6)
	set("tp_src", 40000)
	set("tp_dst", 80)
	return h
}

// attackedSwitch returns a switch whose MFC holds the co-located attack
// state for the use case, with the victim flow primed.
func attackedSwitch(b *testing.B, u flowtable.UseCase) (*vswitch.Switch, bitvec.Vec) {
	b.Helper()
	tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true})
	if err != nil {
		b.Fatal(err)
	}
	victim := victimKey()
	sw.Process(victim, 0)
	if u != flowtable.Baseline {
		tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		core.Replay(sw, tr, 0)
	}
	return sw, victim
}

// BenchmarkFig9aLookupVsMasks is the measured basis of Fig. 9a: the
// victim's per-packet classification cost at each §5.2 use case's mask
// count. ns/op grows linearly with the masks column (Observation 1).
func BenchmarkFig9aLookupVsMasks(b *testing.B) {
	for _, u := range flowtable.UseCases {
		sw, victim := attackedSwitch(b, u)
		b.Run(fmt.Sprintf("%s/masks=%d", u, sw.MFC().MaskCount()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sw.MFC().Lookup(victim, 0)
			}
		})
	}
}

// BenchmarkFig9aMissVsMasks prices a full MFC miss (new-flow setup cost):
// the miss scans every mask, the worst case of Alg. 1.
func BenchmarkFig9aMissVsMasks(b *testing.B) {
	for _, u := range []flowtable.UseCase{flowtable.Dp, flowtable.SipDp, flowtable.SipSpDp} {
		sw, _ := attackedSwitch(b, u)
		// A header matching no megaflow: multicast destination.
		miss := victimKey()
		l := bitvec.IPv4Tuple
		dip, _ := l.FieldIndex("ip_dst")
		dp, _ := l.FieldIndex("tp_dst")
		miss.SetField(l, dip, 0xe0000001)
		miss.SetField(l, dp, 81)
		// Ensure it is genuinely a miss against the exact entries too.
		if _, _, ok := sw.MFC().Lookup(miss, 0); ok {
			// Covered by a deny megaflow: still fine, the hit position
			// is near-uniform; keep the benchmark honest by noting it.
			b.Logf("%v: probe header covered; measuring hit at its position", u)
		}
		b.Run(fmt.Sprintf("%s/masks=%d", u, sw.MFC().MaskCount()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sw.MFC().Lookup(miss, 0)
			}
		})
	}
}

// BenchmarkFig8Scenarios times the full time-series simulations behind
// Fig. 8a/8b (one scenario run per iteration).
func BenchmarkFig8Scenarios(b *testing.B) {
	builders := map[string]func() (*dataplane.Scenario, error){
		"fig8a": dataplane.Fig8aScenario,
		"fig8b": dataplane.Fig8bScenario,
	}
	for name, build := range builders {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc, err := build()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sc.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9bExpectedMasks times the Eq. 1–2 analytical evaluation
// (the E curves of Fig. 9b).
func BenchmarkFig9bExpectedMasks(b *testing.B) {
	for _, u := range []flowtable.UseCase{flowtable.Dp, flowtable.SipDp, flowtable.SipSpDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		b.Run(u.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.ExpectedMasks(tbl, 50000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9bGeneralTrace times random-trace generation (the M runs).
func BenchmarkFig9bGeneralTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.General(bitvec.IPv4Tuple, nil, 1000,
			core.GeneralOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec52TraceGeneration times the §5.1 bit-inversion generator
// per use case (the co-located attack's preparation cost).
func BenchmarkSec52TraceGeneration(b *testing.B) {
	for _, u := range []flowtable.UseCase{flowtable.Dp, flowtable.SipDp, flowtable.SipSpDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		b.Run(u.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.CoLocated(tbl, core.CoLocatedOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSec52AttackReplay times the end-to-end attack: replaying the
// full co-located trace into a fresh switch (slow path + megaflow install
// per packet).
func BenchmarkSec52AttackReplay(b *testing.B) {
	for _, u := range []flowtable.UseCase{flowtable.Dp, flowtable.SipDp} {
		tbl := flowtable.UseCaseACL(u, flowtable.ACLParams{})
		tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(u.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sw, err := vswitch.New(vswitch.Config{
					Table: flowtable.UseCaseACL(u, flowtable.ACLParams{}), DisableMicroflow: true})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				core.Replay(sw, tr, 0)
			}
		})
	}
}

// BenchmarkSec8GuardSweep times one MFCGuard sweep over a fully attacked
// SipDp cache (§8). The attacked cache is snapshotted once and re-loaded
// (cheaply, without re-running the attack) before each timed sweep.
func BenchmarkSec8GuardSweep(b *testing.B) {
	tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
	sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true,
		NoRevalidatorQuirk: true})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := core.CoLocated(tbl, core.CoLocatedOptions{})
	if err != nil {
		b.Fatal(err)
	}
	core.Replay(sw, tr, 0)
	snapshot := sw.MFC().Entries()
	g, err := mitigation.New(mitigation.Config{Switch: sw, MaskThreshold: 100,
		IntervalSec: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, e := range snapshot {
			if err := sw.MFC().Insert(&tss.Entry{Key: e.Key, Mask: e.Mask,
				Action: e.Action, RuleName: e.RuleName}, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if deleted := g.Tick(int64(i+1), 15); deleted == 0 {
			b.Fatal("sweep deleted nothing")
		}
	}
}

// BenchmarkAltClassifiers contrasts the recommended classifiers (§1/§7)
// against the attacked TSS cache on the same probe header. The alt
// classifiers' cost is flat regardless of attack state.
func BenchmarkAltClassifiers(b *testing.B) {
	tbl := flowtable.UseCaseACL(flowtable.SipSpDp, flowtable.ACLParams{})
	ht, err := alt.NewHTrie(tbl)
	if err != nil {
		b.Fatal(err)
	}
	hc, err := alt.NewHyperCuts(tbl, 0)
	if err != nil {
		b.Fatal(err)
	}
	probe := victimKey()
	for _, c := range []alt.Classifier{alt.NewLinear(tbl), ht, hc} {
		b.Run(c.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Lookup(probe)
			}
		})
	}
	sw, victim := attackedSwitch(b, flowtable.SipSpDp)
	b.Run("tss-under-attack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sw.MFC().Lookup(victim, 0)
		}
	})
}

// BenchmarkAblationOverlapCheck measures the cost of the Inv(2)
// enforcement on insert (DESIGN.md ablation: the vswitch generator
// guarantees disjointness, so the check is optional on its path).
func BenchmarkAblationOverlapCheck(b *testing.B) {
	for _, check := range []bool{true, false} {
		b.Run(fmt.Sprintf("check=%v", check), func(b *testing.B) {
			l := bitvec.IPv4Tuple
			c := tss.New(l, tss.Options{DisableOverlapCheck: !check})
			mask := bitvec.FullMask(l)
			key := bitvec.NewVec(l)
			sip, _ := l.FieldIndex("ip_src")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key.SetField(l, sip, uint64(i))
				if err := c.Insert(&tss.Entry{Key: key.Clone(), Mask: mask,
					Action: flowtable.Drop}, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaskOrder compares the victim's lookup cost under
// attack across mask scan orders (DESIGN.md ablation: OVS's hit-count
// sorting rescues a hot victim flow; hash order models the paper's
// measured m/2 average).
func BenchmarkAblationMaskOrder(b *testing.B) {
	orders := map[string]tss.MaskOrder{
		"hash":      tss.OrderHash,
		"insertion": tss.OrderInsertion,
		"hitcount":  tss.OrderHitCount,
	}
	for name, order := range orders {
		b.Run(name, func(b *testing.B) {
			tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
			sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: true, Order: order})
			if err != nil {
				b.Fatal(err)
			}
			victim := victimKey()
			sw.Process(victim, 0)
			tr, _ := core.CoLocated(tbl, core.CoLocatedOptions{})
			core.Replay(sw, tr, 0)
			// Warm the hit-count order.
			for i := 0; i < 100; i++ {
				sw.MFC().Lookup(victim, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.MFC().Lookup(victim, 0)
			}
		})
	}
}

// BenchmarkAblationMicroflowCache measures what the exact-match layer
// buys for a repeated flow (§2.2's fast-path hierarchy).
func BenchmarkAblationMicroflowCache(b *testing.B) {
	for _, enabled := range []bool{true, false} {
		b.Run(fmt.Sprintf("ufc=%v", enabled), func(b *testing.B) {
			tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
			sw, err := vswitch.New(vswitch.Config{Table: tbl, DisableMicroflow: !enabled})
			if err != nil {
				b.Fatal(err)
			}
			victim := victimKey()
			sw.Process(victim, 0)
			tr, _ := core.CoLocated(tbl, core.CoLocatedOptions{})
			core.Replay(sw, tr, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Process(victim, 0)
			}
		})
	}
}

// BenchmarkMicroflowCacheOps prices the raw exact-match store.
func BenchmarkMicroflowCacheOps(b *testing.B) {
	c := microflow.New(0)
	h := victimKey()
	c.Insert(h, microflow.Result{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(h)
	}
}

// BenchmarkPacketPath prices the wire substrate: crafting and parsing one
// adversarial frame (cmd/tsegen's inner loop).
func BenchmarkPacketPath(b *testing.B) {
	l := bitvec.IPv4Tuple
	h := victimKey()
	proto, _ := l.FieldIndex("ip_proto")
	h.SetField(l, proto, packet.ProtoUDP)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame, err := packet.Craft(l, h, packet.CraftOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := packet.Parse(frame, packet.ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPcapWrite prices trace serialisation to pcap.
func BenchmarkPcapWrite(b *testing.B) {
	frame, err := packet.Craft(bitvec.IPv4Tuple, victimKey(), packet.CraftOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf)
	for i := 0; i < b.N; i++ {
		if err := w.WriteRecord(pcap.Record{Data: frame}); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
			w = pcap.NewWriter(&buf)
		}
	}
}

// BenchmarkTheorem41Tradeoff measures the space–time trade-off curve
// empirically: for each k, a k-mask construction of the 16-bit
// single-allow ACL is loaded into a classifier and a worst-case (deny)
// lookup is timed. ns/op grows with k while the reported entry count
// shrinks — Theorem 4.1 in the wild.
func BenchmarkTheorem41Tradeoff(b *testing.B) {
	l := bitvec.MustLayout(bitvec.Field{Name: "F", Width: 16})
	for _, k := range []int{1, 2, 4, 8, 16} {
		entries, err := analysis.KMaskConstruction(l, 0, 0xBEEF, k)
		if err != nil {
			b.Fatal(err)
		}
		c := tss.New(l, tss.Options{DisableOverlapCheck: true})
		for _, e := range entries {
			if err := c.Insert(e, 0); err != nil {
				b.Fatal(err)
			}
		}
		h := bitvec.NewVec(l)
		h.SetField(l, 0, 0x0001) // denied value: deep scan
		b.Run(fmt.Sprintf("k=%d/entries=%d", k, c.EntryCount()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Lookup(h, 0)
			}
		})
	}
}

// BenchmarkAblationDisableMegaflow prices §8 remedy (iii): every packet of
// a repeated flow pays the slow path when the MFC is off.
func BenchmarkAblationDisableMegaflow(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		b.Run(fmt.Sprintf("mfcOff=%v", disabled), func(b *testing.B) {
			tbl := flowtable.UseCaseACL(flowtable.SipDp, flowtable.ACLParams{})
			sw, err := vswitch.New(vswitch.Config{Table: tbl,
				DisableMicroflow: true, DisableMegaflow: disabled})
			if err != nil {
				b.Fatal(err)
			}
			victim := victimKey()
			sw.Process(victim, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.Process(victim, 0)
			}
		})
	}
}

// BenchmarkTheorem41Construction prices building the k-mask trade-off
// points of Theorem 4.1 (w = 16).
func BenchmarkTheorem41Construction(b *testing.B) {
	l := bitvec.MustLayout(bitvec.Field{Name: "F", Width: 16})
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.KMaskConstruction(l, 0, 0xBEEF, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
